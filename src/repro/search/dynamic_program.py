"""Dynamic-programming strategies: exact optimum in O(n²) row lookups.

The objective is additive over contiguous blocks (Proposition 4.2), so the
classic interval-partition recurrence

.. math::

    best(i) = \\min_{j \\ge i} \\; rowmin(i, j) + best(j + 1)

yields the same optimum as exhaustive enumeration while inspecting each of
the ``n(n+1)/2`` matrix rows exactly once. The paper proposes branch and
bound instead; this strategy is the correctness oracle and the natural
"what a modern treatment would do" comparison point for the scaling
benchmarks. ``extras["rows_inspected"]`` reports the lookup count.

The module also hosts :class:`IncrementalDynamicProgramStrategy`
(registered as ``"incremental_dynamic_program"``), the what-if variant:
it keeps the ``best``/``choice`` tables between searches and
:meth:`~IncrementalDynamicProgramStrategy.refine`\\ s them against the
exact dirty-row set a :meth:`~repro.core.cost_matrix.CostMatrix.recompute`
reports. Only positions at or below the largest dirty start can change,
and the descent stops early once every re-relaxed suffix value comes back
unchanged — so a what-if step's search cost tracks the dirty set, not the
path length. Fresh-vs-incremental equality is pinned by the Hypothesis
property in ``tests/test_whatif_session.py``.
"""

from __future__ import annotations

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import CostMatrix
from repro.search.base import (
    SearchResult,
    record_search,
    register_strategy,
    resolve_recorder,
)


def _relax_position(
    matrix: CostMatrix, start: int, best: list[float]
) -> tuple[float, int, int]:
    """One DP relaxation: the cheapest block split starting at ``start``.

    Returns ``(value, chosen end, rows inspected)``. Ties keep the
    earliest ``end`` (strict ``<``), which both strategies rely on for
    platform-stable configurations — the incremental refinement must make
    exactly the same tie decisions as a fresh run.
    """
    length = matrix.length
    best_cost = float("inf")
    best_end = start
    rows = 0
    for end in range(start, length + 1):
        rows += 1
        candidate = matrix.min_cost(start, end).cost + best[end + 1]
        if candidate < best_cost:
            best_cost = candidate
            best_end = end
    return best_cost, best_end, rows


def _fill_tables(
    matrix: CostMatrix, keep_trace: bool, deadline=None
) -> tuple[list[float], list[int], int, list[str]]:
    """The full downward sweep: ``(best, choice, rows inspected, trace)``.

    Shared by both DP strategies so their relaxation order, tie handling
    and trace format can never drift apart. ``deadline`` (a
    :class:`~repro.resilience.Deadline`) is checked once per position.
    """
    length = matrix.length
    # best[i] = minimal cost of covering positions i..length;
    # best[length+1] = 0.
    best: list[float] = [0.0] * (length + 2)
    choice: list[int] = [0] * (length + 2)
    rows = 0
    trace: list[str] = []
    for start in range(length, 0, -1):
        if deadline is not None:
            deadline.check("dynamic_program")
        best[start], choice[start], inspected = _relax_position(
            matrix, start, best
        )
        rows += inspected
        if keep_trace:
            trace.append(
                f"best({start}) = {best[start]:g} via S[{start},{choice[start]}]"
            )
    return best, choice, rows, trace


def _configuration_from_tables(
    matrix: CostMatrix, choice: list[int]
) -> IndexConfiguration:
    """Reconstruct the optimal configuration by walking the choice table."""
    parts: list[IndexedSubpath] = []
    cursor = 1
    while cursor <= matrix.length:
        end = choice[cursor]
        minimum = matrix.min_cost(cursor, end)
        parts.append(IndexedSubpath(cursor, end, minimum.organization))
        cursor = end + 1
    return IndexConfiguration(tuple(parts))


@register_strategy("dynamic_program")
class DynamicProgramStrategy:
    """Interval-partition DP over the precomputed row minima."""

    name = "dynamic_program"
    exact = True

    def search(
        self,
        matrix: CostMatrix,
        *,
        keep_trace: bool = False,
        deadline=None,
        recorder=None,
    ) -> SearchResult:
        recorder = resolve_recorder(recorder)
        with recorder.span(f"search.{self.name}", length=matrix.length) as span:
            result = self._search(matrix, keep_trace=keep_trace, deadline=deadline)
            span.note(rows_inspected=result.extras["rows_inspected"])
        return record_search(recorder, result)

    def _search(
        self, matrix: CostMatrix, *, keep_trace: bool = False, deadline=None
    ) -> SearchResult:
        best, choice, rows, trace = _fill_tables(matrix, keep_trace, deadline)
        # The DP never costs a complete candidate configuration, so
        # ``evaluated`` stays 0; its work measure is the row-lookup count.
        return SearchResult(
            configuration=_configuration_from_tables(matrix, choice),
            cost=best[1],
            evaluated=0,
            pruned=0,
            trace=trace,
            strategy=self.name,
            extras={"rows_inspected": rows},
        )


@register_strategy("incremental_dynamic_program")
class IncrementalDynamicProgramStrategy:
    """The interval-partition DP with reusable tables for what-if loops.

    A fresh :meth:`search` fills the same ``best``/``choice`` tables as
    :class:`DynamicProgramStrategy` (identical relaxation, identical tie
    handling) and keeps them on the instance. :meth:`refine` then accepts
    the updated matrix together with the exact set of rows the update
    touched and re-relaxes only what those rows can reach:

    * a dirty row ``(s, e)`` changes ``rowmin(s, ·)``, so ``best(s)``
      must be re-relaxed — and transitively every ``best(i)`` for
      ``i < s`` *if* some re-relaxed suffix value actually changed;
    * positions above the largest dirty start are untouched by
      construction, and the downward sweep stops early once no suffix
      value has changed and no dirty start remains below.

    The instance is stateful by design: a
    :class:`~repro.whatif.AdvisorSession` owns one per path. Used through
    the plain registry/:func:`~repro.search.get_strategy` path it behaves
    exactly like ``dynamic_program`` (every ``search`` call refills the
    tables), so it is safe to select via ``advise(strategy=...)``.
    """

    name = "incremental_dynamic_program"
    exact = True

    def __init__(self) -> None:
        self._length: int | None = None
        self._best: list[float] | None = None
        self._choice: list[int] | None = None

    def search(
        self,
        matrix: CostMatrix,
        *,
        keep_trace: bool = False,
        deadline=None,
        recorder=None,
    ) -> SearchResult:
        recorder = resolve_recorder(recorder)
        with recorder.span(f"search.{self.name}", length=matrix.length) as span:
            result = self._fresh_search(
                matrix, keep_trace=keep_trace, deadline=deadline
            )
            span.note(rows_inspected=result.extras["rows_inspected"])
        return record_search(recorder, result)

    def _fresh_search(
        self, matrix: CostMatrix, *, keep_trace: bool = False, deadline=None
    ) -> SearchResult:
        best, choice, rows, trace = _fill_tables(matrix, keep_trace, deadline)
        self._length = matrix.length
        self._best = best
        self._choice = choice
        return self._result(
            matrix, trace, rows=rows, relaxed=matrix.length, reused=0
        )

    def refine(
        self,
        matrix: CostMatrix,
        dirty_rows,
        *,
        keep_trace: bool = False,
        deadline=None,
        recorder=None,
    ) -> SearchResult:
        """Re-solve against ``matrix`` given the rows that changed.

        ``dirty_rows`` must contain every row of ``matrix`` whose
        ``min_cost`` may differ from the matrix the current tables were
        computed against (a superset is fine; the caller typically passes
        the union of :class:`~repro.core.cost_matrix.RecomputeReport`
        dirty sets since the last search). Without usable tables — first
        call, or a different path length — this degrades to a fresh
        :meth:`search`.

        The refinement is *atomic with respect to deadlines*: it works on
        copies of the stored tables and commits them only on completion,
        so a :class:`~repro.errors.DeadlineExceeded` raised mid-descent
        leaves the previous (internally consistent) tables in place and
        the caller's dirty set still pending — a later unbounded call
        recovers exactness.
        """
        recorder = resolve_recorder(recorder)
        if (
            self._best is None
            or self._choice is None
            or self._length != matrix.length
        ):
            return self.search(
                matrix, keep_trace=keep_trace, deadline=deadline,
                recorder=recorder,
            )
        with recorder.span(
            f"search.{self.name}.refine",
            length=matrix.length,
            dirty=len(set(dirty_rows)),
        ) as span:
            result = self._refine_tables(
                matrix, dirty_rows, keep_trace=keep_trace, deadline=deadline
            )
            span.note(rows_inspected=result.extras["rows_inspected"])
        return record_search(recorder, result)

    def _refine_tables(
        self,
        matrix: CostMatrix,
        dirty_rows,
        *,
        keep_trace: bool = False,
        deadline=None,
    ) -> SearchResult:
        """The table-reusing descent behind :meth:`refine`."""
        dirty_starts = {start for start, _end in dirty_rows}
        best = list(self._best)
        choice = list(self._choice)
        trace: list[str] = []
        rows = 0
        relaxed = 0
        if dirty_starts:
            high = max(dirty_starts)
            low = min(dirty_starts)
            suffix_changed = False
            for start in range(high, 0, -1):
                if not suffix_changed and start not in dirty_starts:
                    if start < low:
                        # No dirty start remains below and every
                        # re-relaxed suffix value came back unchanged:
                        # the stored prefix is already the fresh answer.
                        break
                    continue
                if deadline is not None:
                    deadline.check("incremental_dynamic_program.refine")
                old_value = best[start]
                value, end, inspected = _relax_position(matrix, start, best)
                rows += inspected
                relaxed += 1
                best[start] = value
                choice[start] = end
                if value != old_value:
                    suffix_changed = True
                if keep_trace:
                    marker = "changed" if value != old_value else "unchanged"
                    trace.append(
                        f"best({start}) = {value:g} via S[{start},{end}] "
                        f"({marker})"
                    )
        self._best = best
        self._choice = choice
        return self._result(
            matrix,
            trace,
            rows=rows,
            relaxed=relaxed,
            reused=matrix.length - relaxed,
        )

    def _result(
        self,
        matrix: CostMatrix,
        trace: list[str],
        *,
        rows: int,
        relaxed: int,
        reused: int,
    ) -> SearchResult:
        return SearchResult(
            configuration=_configuration_from_tables(matrix, self._choice),
            cost=self._best[1],
            evaluated=0,
            pruned=0,
            trace=trace,
            strategy=self.name,
            extras={
                "rows_inspected": rows,
                "relaxed_positions": relaxed,
                "reused_positions": reused,
            },
        )
