"""Exhaustive strategy: evaluate all ``2^(n-1)`` recombinations.

The correctness oracle for the other strategies and the baseline of the
pruning benchmarks. With ``keep_all=True`` the full cost landscape is
recorded in ``extras["all_costs"]`` (used by the coupled-vs-additive
benchmark to rank every configuration).
"""

from __future__ import annotations

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import CostMatrix
from repro.search.base import (
    SearchResult,
    record_search,
    register_strategy,
    resolve_recorder,
)
from repro.search.partitions import enumerate_partitions


@register_strategy("exhaustive")
class ExhaustiveStrategy:
    """Full enumeration with per-subpath best organizations."""

    name = "exhaustive"
    exact = True

    def __init__(self, keep_all: bool = False) -> None:
        self.keep_all = keep_all

    def search(
        self,
        matrix: CostMatrix,
        *,
        keep_trace: bool = False,
        deadline=None,
        recorder=None,
    ) -> SearchResult:
        recorder = resolve_recorder(recorder)
        with recorder.span(f"search.{self.name}", length=matrix.length) as span:
            result = self._search(matrix, keep_trace=keep_trace, deadline=deadline)
            span.note(evaluated=result.evaluated)
        return record_search(recorder, result)

    def _search(
        self, matrix: CostMatrix, *, keep_trace: bool = False, deadline=None
    ) -> SearchResult:
        best_cost = float("inf")
        best: IndexConfiguration | None = None
        evaluated = 0
        trace: list[str] = []
        all_costs: list[tuple[IndexConfiguration, float]] = []
        for blocks in enumerate_partitions(matrix.length):
            if deadline is not None:
                deadline.check("exhaustive")
            evaluated += 1
            parts = []
            total = 0.0
            for start, end in blocks:
                minimum = matrix.min_cost(start, end)
                parts.append(IndexedSubpath(start, end, minimum.organization))
                total += minimum.cost
            configuration = IndexConfiguration(tuple(parts))
            if self.keep_all:
                all_costs.append((configuration, total))
            if keep_trace:
                trace.append(
                    "candidate {"
                    + ", ".join(f"S[{s},{e}]" for s, e in blocks)
                    + f"}} cost {total:g}"
                )
            if total < best_cost:
                best_cost = total
                best = configuration
        assert best is not None
        return SearchResult(
            configuration=best,
            cost=best_cost,
            evaluated=evaluated,
            pruned=0,
            trace=trace,
            strategy=self.name,
            extras={"all_costs": all_costs},
        )
