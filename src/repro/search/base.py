"""Strategy protocol, unified result type and the strategy registry.

The paper's Section 5 pipeline separates *cost evaluation* (``Cost_Matrix``
+ ``Min_Cost``) from *search* (``Opt_Ind_Con``). This module gives the
search half a seam: every searcher implements :class:`SearchStrategy`,
returns a :class:`SearchResult`, and registers itself under a string name
so callers can write ``get_strategy("branch_and_bound")`` — or any future
strategy — without touching the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

from repro.core.configuration import IndexConfiguration
from repro.core.cost_matrix import CostMatrix
from repro.errors import OptimizerError
from repro.model.path import Path
from repro.obs.recorder import resolve_recorder  # noqa: F401  (re-export)


@dataclass
class SearchResult:
    """Unified outcome of any configuration search.

    ``evaluated`` counts the complete candidate configurations whose total
    cost was computed (the quantity the paper reports: "the procedure
    found the optimal configuration by exploring 4 index configurations
    instead of all 8"); ``pruned`` counts branch cuts and beam discards.
    The dynamic program never costs complete candidates individually, so
    it reports ``evaluated == pruned == 0`` and its work measure in
    ``extras["rows_inspected"]``. ``extras`` also carries the exhaustive
    strategy's ``all_costs`` and the beam strategy's ``width``.
    """

    configuration: IndexConfiguration
    cost: float
    evaluated: int
    pruned: int
    trace: list[str] = field(default_factory=list)
    strategy: str = ""
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def work(self) -> str:
        """The strategy's work measure, in its own units."""
        rows = self.extras.get("rows_inspected")
        if rows is not None:
            return f"{rows} row lookups"
        return (
            f"{self.evaluated} configurations evaluated, "
            f"{self.pruned} branches pruned"
        )

    def render(self, path: Path | None = None) -> str:
        """One-line summary in the paper's notation."""
        return (
            f"{self.configuration.render(path)} with processing cost "
            f"{self.cost:.2f} ({self.work})"
        )


@runtime_checkable
class SearchStrategy(Protocol):
    """A configuration searcher over one cost matrix.

    ``name`` is the registry key; ``exact`` declares whether the strategy
    guarantees the optimum (the parity tests assert it for every exact
    strategy). ``deadline`` is an optional
    :class:`~repro.resilience.Deadline` the strategy checks cooperatively
    (once per position / frontier level / node), raising
    :class:`~repro.errors.DeadlineExceeded` when the budget is spent so
    the degradation ladder above can answer from a cheaper rung.
    ``recorder`` (a :class:`~repro.obs.Recorder`; ``None`` means the
    no-op default) wraps the run in a ``search.<name>`` span and folds
    the evaluated/pruned work counters into the metrics registry —
    every registered strategy accepts it.
    """

    name: str
    exact: bool

    def search(
        self,
        matrix: CostMatrix,
        *,
        keep_trace: bool = False,
        deadline=None,
        recorder=None,
    ) -> SearchResult:
        """Select a configuration from ``matrix``."""
        ...


def record_search(recorder, result: SearchResult) -> SearchResult:
    """Fold a finished :class:`SearchResult` into ``recorder``'s metrics.

    One ``search.searches`` tick plus the strategy's own work measure
    (``search.evaluated``/``search.pruned``, and
    ``search.rows_inspected`` for the dynamic programs), all labeled by
    strategy name. Returns the result unchanged so strategies can
    ``return record_search(recorder, result)``.
    """
    if recorder.enabled:
        strategy = result.strategy
        recorder.counter("search.searches", strategy=strategy).add()
        recorder.counter("search.evaluated", strategy=strategy).add(
            result.evaluated
        )
        recorder.counter("search.pruned", strategy=strategy).add(result.pruned)
        rows = result.extras.get("rows_inspected")
        if rows is not None:
            recorder.counter("search.rows_inspected", strategy=strategy).add(
                rows
            )
    return result


def position_cost_bounds(matrix: CostMatrix) -> tuple[list[float], list[float]]:
    """Per-position lower-bound ingredients shared by pruning strategies.

    Returns ``(cheapest_from, negative_tail)``, both indexed ``1..length``
    (with two trailing zero sentinels): ``cheapest_from[p]`` is the cost
    of the cheapest single row starting at ``p``; ``negative_tail[p]`` is
    ``sum(min(0, cheapest_from[q]) for q in p..length)``. Any set of
    blocks covering ``p..length`` starts one block at ``p`` (costing at
    least ``cheapest_from[p]``) and further blocks at distinct positions
    ``q > p`` (each costing at least ``min(0, cheapest_from[q])``), so
    ``cheapest_from[p] + negative_tail[p + 1]`` is an admissible remainder
    bound and ``negative_tail[p]`` alone is an admissible bound that is
    identically zero on non-negative matrices. Both branch and bound and
    the greedy beam prune with these; keeping the computation in one
    place keeps their pruning soundness in sync.
    """
    length = matrix.length
    cheapest_from = [0.0] * (length + 2)
    for start in range(1, length + 1):
        cheapest_from[start] = min(
            matrix.min_cost(start, end).cost
            for end in range(start, length + 1)
        )
    negative_tail = [0.0] * (length + 2)
    for start in range(length, 0, -1):
        negative_tail[start] = negative_tail[start + 1] + min(
            0.0, cheapest_from[start]
        )
    return cheapest_from, negative_tail


_REGISTRY: dict[str, Callable[..., SearchStrategy]] = {}


def register_strategy(
    name: str,
) -> Callable[[Callable[..., SearchStrategy]], Callable[..., SearchStrategy]]:
    """Class decorator: register a strategy factory under ``name``."""

    def decorate(
        factory: Callable[..., SearchStrategy]
    ) -> Callable[..., SearchStrategy]:
        if name in _REGISTRY:
            raise OptimizerError(f"search strategy {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return decorate


def available_strategies() -> tuple[str, ...]:
    """The registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_strategy(name: str, **options: Any) -> SearchStrategy:
    """Instantiate the strategy registered under ``name``.

    Keyword options are forwarded to the strategy constructor (e.g.
    ``get_strategy("greedy_beam", width=8)``).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_strategies())
        raise OptimizerError(
            f"unknown search strategy {name!r} (available: {known})"
        ) from None
    try:
        return factory(**options)
    except TypeError as error:
        raise OptimizerError(
            f"invalid options for search strategy {name!r}: {error}"
        ) from None
