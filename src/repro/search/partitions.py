"""Shared partition enumeration for every search strategy.

Section 5 derives the search-space size: a path of length ``n`` has
``n - 1`` gaps between consecutive classes, each of which either is a
subpath boundary or is not, hence ``2^(n-1)`` contiguous partitions
(recombinations). Every strategy in :mod:`repro.search` — and the
multi-path and storage-budget extensions — enumerates or indexes that
space through this module instead of hand-rolling its own loop.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import OptimizerError

Blocks = tuple[tuple[int, int], ...]


def partition_count(length: int) -> int:
    """``2^(length-1)``: the number of contiguous partitions."""
    if length < 1:
        raise OptimizerError("path length must be at least 1")
    return 2 ** (length - 1)


def configuration_count(length: int, organizations_per_block: int) -> int:
    """``r·(1+r)^(length-1)``: configurations with ``r`` choices per block.

    Summing ``r^m`` over the ``C(length-1, m-1)`` partitions with ``m``
    blocks gives the size of the candidate space the multi-path selector
    draws from when every block may take any of its ``r`` best
    organizations. With ``r = 1`` this is :func:`partition_count`; the
    beam parity property uses it as the width beyond which k-best
    candidate generation provably covers the whole space.
    """
    if length < 1:
        raise OptimizerError("path length must be at least 1")
    if organizations_per_block < 1:
        raise OptimizerError(
            f"organizations per block must be positive, got "
            f"{organizations_per_block}"
        )
    r = organizations_per_block
    return r * (1 + r) ** (length - 1)


def blocks_from_mask(length: int, mask: int) -> Blocks:
    """The partition selected by one boundary bitmask.

    Bit ``gap - 1`` of ``mask`` set means there is a boundary after
    position ``gap`` (for ``gap`` in ``1..length-1``).
    """
    blocks: list[tuple[int, int]] = []
    start = 1
    for gap in range(1, length):
        if mask & (1 << (gap - 1)):
            blocks.append((start, gap))
            start = gap + 1
    blocks.append((start, length))
    return tuple(blocks)


def enumerate_partitions(length: int) -> Iterator[Blocks]:
    """All contiguous partitions of positions ``1..length``.

    Yields ``2^(length-1)`` tuples of ``(start, end)`` blocks, in the
    order induced by the binary boundary masks (mask ``0`` — the whole
    path — first).
    """
    for mask in range(partition_count(length)):
        yield blocks_from_mask(length, mask)


def enumerate_first_pieces(start: int, length: int) -> Iterator[tuple[int, int]]:
    """The possible first blocks ``(start, k)`` of a partition of
    ``start..length``, longest first.

    The order matches the paper's ``Opt_Ind_Con`` recursion (split off
    ``S_{1,n-1}`` before ``S_{1,n-2}`` and so on); the complete remainder
    ``(start, length)`` is *not* included — strategies treat the unsplit
    remainder as the base case.
    """
    for k in range(length - 1, start - 1, -1):
        yield (start, k)


def validate_partition(length: int, blocks: Blocks) -> None:
    """Raise :class:`OptimizerError` unless ``blocks`` covers ``1..length``
    contiguously."""
    expected = 1
    for start, end in blocks:
        if start != expected or end < start:
            raise OptimizerError(
                f"blocks {blocks} do not form a contiguous partition of "
                f"1..{length}"
            )
        expected = end + 1
    if expected != length + 1:
        raise OptimizerError(
            f"blocks {blocks} do not cover positions 1..{length}"
        )
