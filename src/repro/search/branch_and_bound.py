"""``Opt_Ind_Con``: the paper's branch-and-bound strategy (Section 5).

The procedure recombines the original path from subpaths. Starting from
the degree-1 configuration, the path is repeatedly split into a first
piece and a remainder; a branch is cut as soon as the accumulated cost of
the chosen pieces reaches the best complete configuration seen so far
(``PC >= PC_min``). The recursion order matches the paper's worked
example exactly — first pieces are tried longest-first — so the Figure 6
walkthrough can be replayed step by step (see
``benchmarks/bench_fig6_walkthrough.py``).
"""

from __future__ import annotations

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import CostMatrix
from repro.search.base import (
    SearchResult,
    position_cost_bounds,
    record_search,
    register_strategy,
    resolve_recorder,
)
from repro.search.partitions import enumerate_first_pieces


@register_strategy("branch_and_bound")
class BranchAndBoundStrategy:
    """Exact search with the paper's ``PC >= PC_min`` pruning rule."""

    name = "branch_and_bound"
    exact = True

    def search(
        self,
        matrix: CostMatrix,
        *,
        keep_trace: bool = False,
        deadline=None,
        recorder=None,
    ) -> SearchResult:
        recorder = resolve_recorder(recorder)
        with recorder.span(f"search.{self.name}", length=matrix.length) as span:
            result = self._search(matrix, keep_trace=keep_trace, deadline=deadline)
            span.note(evaluated=result.evaluated, pruned=result.pruned)
        return record_search(recorder, result)

    def _search(
        self, matrix: CostMatrix, *, keep_trace: bool = False, deadline=None
    ) -> SearchResult:
        length = matrix.length
        trace: list[str] = []

        # tail_bound[p]: admissible lower bound on the blocks covering
        # p..length. Identically zero for the cost model's non-negative
        # matrices (so the paper's PC >= PC_min rule and the Figure 6
        # walkthrough are untouched); it keeps the prune sound for
        # literal matrices with negative entries.
        _, tail_bound = position_cost_bounds(matrix)

        state = {
            "best_cost": float("inf"),
            "best_parts": None,
            "evaluated": 0,
            "pruned": 0,
        }

        def note(message: str) -> None:
            if keep_trace:
                trace.append(message)

        def parts_label(parts: list[IndexedSubpath]) -> str:
            return "{" + ", ".join(f"S[{p.start},{p.end}]" for p in parts) + "}"

        def evaluate_candidate(
            parts: list[IndexedSubpath], cost: float
        ) -> None:
            state["evaluated"] += 1
            if cost < state["best_cost"]:
                state["best_cost"] = cost
                state["best_parts"] = list(parts)
                note(f"candidate {parts_label(parts)} cost {cost:g} -> new best")
            else:
                note(f"candidate {parts_label(parts)} cost {cost:g}")

        def explore(
            start: int, prefix: list[IndexedSubpath], prefix_cost: float
        ) -> None:
            if deadline is not None:
                deadline.check("branch_and_bound")
            # Complete candidate: the prefix plus the unsplit remainder.
            remainder = matrix.min_cost(start, length)
            candidate = prefix + [
                IndexedSubpath(start, length, remainder.organization)
            ]
            evaluate_candidate(candidate, prefix_cost + remainder.cost)
            # Split points: first piece start..k, longest first (the paper
            # splits off S_{1,n-1} before S_{1,n-2} and so on).
            for piece_start, k in enumerate_first_pieces(start, length):
                piece = matrix.min_cost(piece_start, k)
                accumulated = prefix_cost + piece.cost
                if accumulated + tail_bound[k + 1] >= state["best_cost"]:
                    state["pruned"] += 1
                    note(
                        f"prune: {parts_label(prefix)} + S[{piece_start},{k}] "
                        f"accumulates {accumulated + tail_bound[k + 1]:g} "
                        f">= {state['best_cost']:g}"
                    )
                    continue
                explore(
                    k + 1,
                    prefix + [IndexedSubpath(piece_start, k, piece.organization)],
                    accumulated,
                )

        explore(1, [], 0.0)
        best_parts = state["best_parts"]
        assert best_parts is not None
        return SearchResult(
            configuration=IndexConfiguration(tuple(best_parts)),
            cost=state["best_cost"],
            evaluated=state["evaluated"],
            pruned=state["pruned"],
            trace=trace,
            strategy=self.name,
        )
