"""Greedy beam-search strategy: anytime near-optimal for long paths.

Exhaustive recombination is ``O(2^(n-1))`` and branch and bound has the
same worst case, so paths of length 20–40 (deep composition hierarchies,
synthetic stress workloads) need an anytime strategy. The beam keeps the
``width`` most promising partial partitions, ranked by accumulated cost
plus an admissible remainder bound (the cheapest single row starting at
the uncovered position, plus the negative tails of later rows so the
bound stays valid for literal matrices with negative costs). Partial
partitions sharing
the same uncovered position are dominated by the cheapest among them
(the objective is additive), so only that one enters the beam — with
``width >=`` path length the beam is therefore exact. ``width`` trades
speed for closeness to the optimum; the parity tests bound the gap
against the dynamic program, and ``benchmarks/bench_beam_vs_dp.py``
measures it.

The module also hosts :func:`top_configurations`, the k-best variant of
the same frontier sweep: instead of one underlined winner it returns the
``count`` locally cheapest configurations of a path. The multi-path
selector (:mod:`repro.core.multipath`) uses it as its candidate
generator, so joint selection over many long paths never enumerates the
``2^(n-1)`` partition space.
"""

from __future__ import annotations

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import CostMatrix
from repro.errors import OptimizerError
from repro.search.base import (
    SearchResult,
    position_cost_bounds,
    record_search,
    register_strategy,
    resolve_recorder,
)

#: Default number of partial partitions kept per expansion level.
DEFAULT_WIDTH = 8


def top_configurations(
    matrix: CostMatrix,
    count: int,
    per_row_organizations: int = 1,
) -> list[tuple[float, tuple[IndexedSubpath, ...]]]:
    """The ``count`` cheapest configurations of one path, by local cost.

    A width-``count`` k-best sweep over the partition DAG (nodes are the
    boundary positions ``0..length``, an edge ``p → e`` is the block
    ``p+1..e`` priced with one of its ``per_row_organizations`` best
    organizations from the tie-tolerant :meth:`CostMatrix.ranked_organizations`
    ranking). Because the objective is additive, the ``count`` cheapest
    completions through a boundary extend the ``count`` cheapest partials
    reaching it, so keeping ``count`` partials per boundary is *exact*:
    the result is the true top-``count`` of the ``r·(1+r)^(n-1)``-sized
    candidate space (:func:`repro.search.partitions.configuration_count`),
    and with ``count`` at least that size it is the whole space — the
    guarantee behind the multi-path beam/oracle parity property.

    Returns ``(cost, blocks)`` pairs in ascending cost order; ties keep
    generation order (shorter first blocks and earlier organization
    columns first), so the output is deterministic across platforms.
    O(n² · r · count · log) time, independent of ``2^(n-1)``.
    """
    if count < 1:
        raise OptimizerError(f"candidate count must be positive, got {count}")
    if per_row_organizations < 1:
        raise OptimizerError(
            f"organizations per block must be positive, got "
            f"{per_row_organizations}"
        )
    length = matrix.length
    # best[p]: up to `count` cheapest (cost, blocks) covering 1..p.
    best: list[list[tuple[float, tuple[IndexedSubpath, ...]]]] = [
        [] for _ in range(length + 1)
    ]
    best[0] = [(0.0, ())]
    for end in range(1, length + 1):
        pool: list[tuple[float, tuple[IndexedSubpath, ...]]] = []
        for start in range(1, end + 1):
            ranked = matrix.ranked_organizations(
                start, end, limit=per_row_organizations
            )
            for organization in ranked:
                block_cost = matrix.cost(start, end, organization)
                block = IndexedSubpath(start, end, organization)
                for prefix_cost, prefix in best[start - 1]:
                    pool.append((prefix_cost + block_cost, prefix + (block,)))
        # Stable sort on cost only: IndexOrganization members are not
        # orderable, and generation order is already deterministic.
        pool.sort(key=lambda entry: entry[0])
        best[end] = pool[:count]
    return best[length]


@register_strategy("greedy_beam")
class GreedyBeamStrategy:
    """Width-bounded best-first search over partial partitions."""

    name = "greedy_beam"
    exact = False

    def __init__(self, width: int = DEFAULT_WIDTH) -> None:
        if width < 1:
            raise OptimizerError(f"beam width must be positive, got {width}")
        self.width = width

    def search(
        self,
        matrix: CostMatrix,
        *,
        keep_trace: bool = False,
        deadline=None,
        recorder=None,
    ) -> SearchResult:
        recorder = resolve_recorder(recorder)
        with recorder.span(
            f"search.{self.name}", length=matrix.length, width=self.width
        ) as span:
            result = self._search(matrix, keep_trace=keep_trace, deadline=deadline)
            span.note(evaluated=result.evaluated, pruned=result.pruned)
        return record_search(recorder, result)

    def _search(
        self, matrix: CostMatrix, *, keep_trace: bool = False, deadline=None
    ) -> SearchResult:
        length = matrix.length
        trace: list[str] = []

        # remainder_bound[p]: admissible lower bound on covering
        # p..length — the cheapest first block plus the negative tails of
        # later positions (zero for the cost model's non-negative
        # matrices); see :func:`repro.search.base.position_cost_bounds`.
        cheapest_from, negative_tail = position_cost_bounds(matrix)
        remainder_bound = [0.0] * (length + 2)
        for start in range(1, length + 1):
            remainder_bound[start] = cheapest_from[start] + negative_tail[start + 1]

        best_cost = float("inf")
        best_parts: tuple[IndexedSubpath, ...] | None = None
        evaluated = 0
        pruned = 0

        # A frontier entry: (priority, cost_so_far, next_position, parts).
        frontier: list[
            tuple[float, float, int, tuple[IndexedSubpath, ...]]
        ] = [(remainder_bound[1], 0.0, 1, ())]

        while frontier:
            # One cooperative deadline check per expansion level: a level
            # is the natural anytime granule (at most width · length row
            # lookups), so an expired budget never overruns by more.
            if deadline is not None:
                deadline.check("greedy_beam")
            successors: list[
                tuple[float, float, int, tuple[IndexedSubpath, ...]]
            ] = []
            for _, cost_so_far, position, parts in frontier:
                for end in range(position, length + 1):
                    minimum = matrix.min_cost(position, end)
                    extended_cost = cost_so_far + minimum.cost
                    extended = parts + (
                        IndexedSubpath(position, end, minimum.organization),
                    )
                    if end == length:
                        evaluated += 1
                        if extended_cost < best_cost:
                            best_cost = extended_cost
                            best_parts = extended
                            if keep_trace:
                                trace.append(
                                    f"complete at cost {extended_cost:g} "
                                    f"-> new best"
                                )
                        continue
                    priority = extended_cost + remainder_bound[end + 1]
                    if priority >= best_cost:
                        pruned += 1
                        continue
                    successors.append(
                        (priority, extended_cost, end + 1, extended)
                    )
            successors.sort(key=lambda entry: entry[0])
            # The objective is additive, so of two partial partitions with
            # the same next uncovered position only the cheaper can ever
            # win — drop dominated duplicates before they occupy beam
            # slots (with width >= path length this makes the beam exact).
            best_per_position: list[
                tuple[float, float, int, tuple[IndexedSubpath, ...]]
            ] = []
            seen_positions: set[int] = set()
            for entry in successors:
                if entry[2] in seen_positions:
                    pruned += 1
                    continue
                seen_positions.add(entry[2])
                best_per_position.append(entry)
            if len(best_per_position) > self.width:
                pruned += len(best_per_position) - self.width
                if keep_trace:
                    trace.append(
                        f"beam discards {len(best_per_position) - self.width} "
                        f"of {len(best_per_position)} partial partitions"
                    )
                best_per_position = best_per_position[: self.width]
            frontier = best_per_position

        assert best_parts is not None
        return SearchResult(
            configuration=IndexConfiguration(best_parts),
            cost=best_cost,
            evaluated=evaluated,
            pruned=pruned,
            trace=trace,
            strategy=self.name,
            extras={"width": self.width},
        )
