"""Configuration search strategies over a cost matrix.

The Section 5 pipeline separates cost evaluation (``Cost_Matrix`` +
``Min_Cost``, in :mod:`repro.core.cost_matrix`) from the search over the
``2^(n-1)`` recombinations. This package holds the search half:

* :mod:`~repro.search.base` — the :class:`SearchStrategy` protocol, the
  unified :class:`SearchResult`, and the string-keyed strategy registry;
* :mod:`~repro.search.partitions` — shared partition/split enumeration;
* :mod:`~repro.search.branch_and_bound` — the paper's ``Opt_Ind_Con``;
* :mod:`~repro.search.exhaustive` — the full-enumeration oracle;
* :mod:`~repro.search.dynamic_program` — the O(n²) exact optimum;
* :mod:`~repro.search.greedy_beam` — anytime near-optimal beam search
  for long paths.

Quickstart::

    from repro.search import get_strategy

    result = get_strategy("dynamic_program").search(matrix)
    fast = get_strategy("greedy_beam", width=4).search(matrix)
"""

from repro.search.base import (
    SearchResult,
    SearchStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
)
from repro.search.branch_and_bound import BranchAndBoundStrategy
from repro.search.dynamic_program import DynamicProgramStrategy
from repro.search.exhaustive import ExhaustiveStrategy
from repro.search.greedy_beam import DEFAULT_WIDTH, GreedyBeamStrategy
from repro.search.partitions import (
    blocks_from_mask,
    enumerate_first_pieces,
    enumerate_partitions,
    partition_count,
    validate_partition,
)

__all__ = [
    "DEFAULT_WIDTH",
    "BranchAndBoundStrategy",
    "DynamicProgramStrategy",
    "ExhaustiveStrategy",
    "GreedyBeamStrategy",
    "SearchResult",
    "SearchStrategy",
    "available_strategies",
    "blocks_from_mask",
    "enumerate_first_pieces",
    "enumerate_partitions",
    "get_strategy",
    "partition_count",
    "register_strategy",
    "validate_partition",
]
