"""Configuration search strategies over a cost matrix.

The Section 5 pipeline separates cost evaluation (``Cost_Matrix`` +
``Min_Cost``, in :mod:`repro.core.cost_matrix`) from the search over the
``2^(n-1)`` recombinations. This package holds the search half:

* :mod:`~repro.search.base` — the :class:`SearchStrategy` protocol, the
  unified :class:`SearchResult`, and the string-keyed strategy registry
  (``get_strategy(name, **options)``; register new searchers with
  ``@register_strategy("name")`` without touching the pipeline);
* :mod:`~repro.search.partitions` — shared partition/split enumeration
  and the search-space counting helpers (``partition_count``,
  ``configuration_count``);
* :mod:`~repro.search.branch_and_bound` — the paper's ``Opt_Ind_Con``;
* :mod:`~repro.search.exhaustive` — the full-enumeration oracle;
* :mod:`~repro.search.dynamic_program` — the O(n²) exact optimum, plus
  its what-if variant ``incremental_dynamic_program`` whose kept
  ``best``/``choice`` tables are refined against the exact dirty-row set
  of a :meth:`~repro.core.cost_matrix.CostMatrix.recompute`
  (:class:`~repro.search.dynamic_program.IncrementalDynamicProgramStrategy`,
  driven by :class:`repro.whatif.AdvisorSession`);
* :mod:`~repro.search.greedy_beam` — anytime near-optimal beam search
  for long paths, plus :func:`~repro.search.greedy_beam.top_configurations`,
  the exact k-best sweep that feeds per-path candidates to the
  multi-path selector (:mod:`repro.core.multipath`) and keeps joint
  selection over many long paths out of the ``2^(n-1)`` regime.

Quickstart::

    from repro.search import get_strategy, top_configurations

    result = get_strategy("dynamic_program").search(matrix)
    fast = get_strategy("greedy_beam", width=4).search(matrix)
    candidates = top_configurations(matrix, count=16,
                                    per_row_organizations=2)
"""

from repro.search.base import (
    SearchResult,
    SearchStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
)
from repro.search.branch_and_bound import BranchAndBoundStrategy
from repro.search.dynamic_program import (
    DynamicProgramStrategy,
    IncrementalDynamicProgramStrategy,
)
from repro.search.exhaustive import ExhaustiveStrategy
from repro.search.greedy_beam import (
    DEFAULT_WIDTH,
    GreedyBeamStrategy,
    top_configurations,
)
from repro.search.partitions import (
    blocks_from_mask,
    configuration_count,
    enumerate_first_pieces,
    enumerate_partitions,
    partition_count,
    validate_partition,
)

__all__ = [
    "DEFAULT_WIDTH",
    "BranchAndBoundStrategy",
    "DynamicProgramStrategy",
    "ExhaustiveStrategy",
    "IncrementalDynamicProgramStrategy",
    "GreedyBeamStrategy",
    "SearchResult",
    "SearchStrategy",
    "available_strategies",
    "blocks_from_mask",
    "configuration_count",
    "enumerate_first_pieces",
    "enumerate_partitions",
    "get_strategy",
    "partition_count",
    "register_strategy",
    "top_configurations",
    "validate_partition",
]
