"""Multi-index (MX): a simple index on every class in the subpath's scope.

"A multi-index allocates an index on each class in the scope of a path.
The indexed attributes are the ones specified in the path" (Section 2.2).
A lookup against the ending attribute chains backwards: the ending-level
indexes map the probe value to oids, which become the probe keys of the
previous level's indexes, and so on up to the target class.

Deleting an object of class ``C_l`` also removes the record keyed by its
oid from the indexes of the previous class and all its subclasses — the
maintenance dependency Section 3.1 describes with the ``Bus[i]`` example.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import IndexError_
from repro.indexes.base import IndexContext, OperationalIndex
from repro.indexes.simple import SimpleIndex
from repro.model.objects import OID, ObjectInstance


class MultiIndex(OperationalIndex):
    """MX over a subpath: one :class:`SimpleIndex` per scope class."""

    def __init__(self, context: IndexContext) -> None:
        super().__init__(context)
        self._components: dict[tuple[int, str], SimpleIndex] = {}
        for position in range(context.start, context.end + 1):
            level_context = replace(context, start=position, end=position)
            for member in context.members(position):
                self._components[(position, member)] = SimpleIndex(
                    level_context, class_name=member
                )

    def component(self, position: int, class_name: str) -> SimpleIndex:
        """The SIX on ``A_position`` of one class."""
        try:
            return self._components[(position, class_name)]
        except KeyError:
            raise IndexError_(
                f"MX has no component for ({position}, {class_name!r})"
            ) from None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(
        self, value: object, target_class: str, include_subclasses: bool = False
    ) -> set[OID]:
        position = self._require_position(target_class)
        targets = [target_class]
        if include_subclasses:
            targets = [
                name
                for name in self.context.database.schema.hierarchy(target_class)
                if name in self.context.members(position)
            ]
        keys: set[object] = {self.context.key_of_value(value)}
        for level in range(self.context.end, position, -1):
            next_keys: set[object] = set()
            for member in self.context.members(level):
                component = self._components[(level, member)]
                for key in keys:
                    next_keys.update(component.lookup(key, member))
            keys = next_keys
            if not keys:
                return set()
        result: set[OID] = set()
        for member in targets:
            component = self._components[(position, member)]
            for key in keys:
                result.update(component.lookup(key, member))
        return result

    def range_lookup(
        self,
        low: object,
        high: object,
        target_class: str,
        include_subclasses: bool = False,
    ) -> set[OID]:
        position = self._require_position(target_class)
        # Contiguous scans of the ending-level indexes seed the oid chain.
        keys: set[object] = set()
        if position == self.context.end:
            return self._components[
                (position, target_class)
            ].range_lookup(low, high, target_class)
        for member in self.context.members(self.context.end):
            keys.update(
                self._components[(self.context.end, member)].range_lookup(
                    low, high, member
                )
            )
        return self._chain_to(position, target_class, include_subclasses, keys)

    def _chain_to(
        self,
        position: int,
        target_class: str,
        include_subclasses: bool,
        keys: set[object],
    ) -> set[OID]:
        targets = [target_class]
        if include_subclasses:
            targets = [
                name
                for name in self.context.database.schema.hierarchy(target_class)
                if name in self.context.members(position)
            ]
        for level in range(self.context.end - 1, position, -1):
            next_keys: set[object] = set()
            for member in self.context.members(level):
                component = self._components[(level, member)]
                for key in keys:
                    next_keys.update(component.lookup(key, member))
            keys = next_keys
            if not keys:
                return set()
        result: set[OID] = set()
        for member in targets:
            component = self._components[(position, member)]
            for key in keys:
                result.update(component.lookup(key, member))
        return result

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def on_insert(self, instance: ObjectInstance) -> None:
        position = self.context.position_of_class(instance.oid.class_name)
        if position is None:
            return
        self._components[(position, instance.oid.class_name)].on_insert(instance)

    def on_delete(self, instance: ObjectInstance) -> None:
        position = self.context.position_of_class(instance.oid.class_name)
        if position is None:
            return
        self._components[(position, instance.oid.class_name)].on_delete(instance)
        if position > self.context.start:
            # The deleted oid keys one record in the index of the previous
            # class and each of its subclasses.
            for member in self.context.members(position - 1):
                self._components[(position - 1, member)].remove_key(instance.oid)

    def remove_key(self, key: object) -> None:
        """Cross-subpath CMD: drop the ending-level records keyed by ``key``."""
        for member in self.context.members(self.context.end):
            self._components[(self.context.end, member)].remove_key(key)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        for component in self._components.values():
            component.check_consistency()
