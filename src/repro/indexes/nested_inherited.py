"""Nested inherited index (NIX): primary + auxiliary index, operational.

Implements Figures 3–5 and the Section 3.1 algorithms:

* The **primary index** maps each value of the subpath's ending attribute
  to a record listing, per scope class, ``(oid, numchild)`` pairs —
  ``numchild`` being the number of the object's children that (still)
  reach the value. An object is removed from a record when its count
  drops to zero.
* The **auxiliary index** maps each oid of a non-starting-class object to
  its 3-tuple: pointers to the primary records containing it plus the
  list of its aggregation parents. Pointer-array accesses are *direct*
  (no tree descent), as in the paper's architecture.
* **Deletion** follows the five-step algorithm: update the children's
  3-tuples, seed the parent list, then walk the ancestor levels upward —
  decrementing ``numchild`` counters, removing exhausted ancestors from
  the primary records and stripping the dangling pointers from their
  3-tuples.
* **Insertion** mirrors it: the new object joins its children's primary
  records with the correct ``numchild`` and receives its own 3-tuple.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import IndexError_
from repro.indexes.base import IndexContext, OperationalIndex
from repro.model.objects import OID, ObjectInstance

#: A primary record: class name -> {oid: numchild}.
PrimaryRecord = dict[str, dict[OID, int]]


@dataclass
class ThreeTuple:
    """An auxiliary record (Figure 4): pointers plus parent list."""

    pointers: set[object] = field(default_factory=set)
    parents: set[OID] = field(default_factory=set)


class NestedInheritedIndex(OperationalIndex):
    """Operational NIX over one subpath."""

    def __init__(self, context: IndexContext) -> None:
        super().__init__(context)
        ending_atomic = context.path.attribute_def_at(context.end).is_atomic
        # Under the hash layout the primary becomes a chained record
        # store (few large records, each in its own page chain) and the
        # auxiliary a hash directory.
        self._primary = context.make_structure(
            ending_atomic, f"NIX-primary({context.subpath})", chained=True
        )
        self._auxiliary = context.make_structure(
            False, f"NIX-auxiliary({context.subpath})"
        )
        self._build()

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def _entry_size(self, position: int) -> int:
        attribute = self.context.path.attribute_def_at(position)
        if attribute.multi_valued:
            return self.context.sizes.oid_size + self.context.sizes.numchild_size
        return self.context.sizes.oid_size

    def _primary_size(self, record: PrimaryRecord) -> int:
        sizes = self.context.sizes
        total = sizes.record_header_size + sizes.key_size(
            atomic=self.context.path.attribute_def_at(self.context.end).is_atomic
        )
        for class_name, entries in record.items():
            position = self.context.position_of_class(class_name)
            assert position is not None
            total += sizes.class_directory_entry_size
            total += len(entries) * self._entry_size(position)
        return total

    def _aux_size(self, record: ThreeTuple) -> int:
        sizes = self.context.sizes
        return (
            sizes.record_header_size
            + sizes.oid_size
            + len(record.pointers) * sizes.pointer_size
            + len(record.parents) * sizes.oid_size
        )

    # ------------------------------------------------------------------
    # bulk construction
    # ------------------------------------------------------------------
    def _reach_counts(self, instance: ObjectInstance, position: int) -> Counter:
        """``numchild`` per ending value, under the paper's semantics.

        For an ending-class object: the multiplicity of each value in its
        attribute list. For earlier classes: the number of *distinct
        children* through which each value is reachable.
        """
        attribute = self.context.attribute_at(position)
        if position == self.context.end:
            # Values referencing deleted objects are dead keys: their
            # primary records were dropped by the CMD maintenance.
            return Counter(
                self.context.key_of_value(v)
                for v in instance.value_list(attribute)
                if not (
                    isinstance(v, OID)
                    and not self.context.database.contains(v)
                )
            )
        database = self.context.database
        counts: Counter = Counter()
        children = {
            v for v in instance.value_list(attribute) if isinstance(v, OID)
        }
        for child in children:
            if not database.contains(child):
                continue
            child_position = self.context.position_of_class(child.class_name)
            if child_position is None:
                continue
            child_reach = self._reach_counts(database.get(child), child_position)
            for key in child_reach:
                counts[key] += 1
        return counts

    def _parents_of(self, oid: OID, position: int) -> set[OID]:
        if position <= self.context.start:
            return set()
        attribute = self.context.attribute_at(position - 1)
        parents = self.context.database.parents_of(oid, attribute)
        allowed = set(self.context.members(position - 1))
        return {parent for parent in parents if parent.class_name in allowed}

    def _build(self) -> None:
        primary: dict[object, PrimaryRecord] = {}
        tuples: dict[OID, ThreeTuple] = {}
        context = self.context
        for position in range(context.start, context.end + 1):
            for member in context.members(position):
                for instance in context.database.extent(member):
                    counts = self._reach_counts(instance, position)
                    for key, count in counts.items():
                        record = primary.setdefault(key, {})
                        record.setdefault(member, {})[instance.oid] = count
                    if position > context.start:
                        tuples[instance.oid] = ThreeTuple(
                            pointers=set(counts),
                            parents=self._parents_of(instance.oid, position),
                        )
        for key in sorted(primary, key=repr):
            record = primary[key]
            self._primary.insert(key, record, self._primary_size(record))
        for oid in sorted(tuples):
            record = tuples[oid]
            self._auxiliary.insert(oid, record, self._aux_size(record))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(
        self, value: object, target_class: str, include_subclasses: bool = False
    ) -> set[OID]:
        position = self._require_position(target_class)
        wanted = {target_class}
        if include_subclasses:
            wanted.update(
                name
                for name in self.context.database.schema.hierarchy(target_class)
                if name in self.context.members(position)
            )
        key = self.context.key_of_value(value)
        partial = self._partial_pages(key, wanted)
        record = self._primary.search(key, partial_pages=partial)
        if record is None:
            return set()
        result: set[OID] = set()
        for class_name, entries in record.items():  # type: ignore[union-attr]
            if class_name in wanted:
                result.update(entries)
        return result

    def _partial_pages(self, key: object, wanted: set[str]) -> int | None:
        record = self._primary.get(key)
        if record is None:
            return None
        full = self._primary_size(record)  # type: ignore[arg-type]
        if full <= self.context.sizes.page_size:
            return None
        import math

        sizes = self.context.sizes
        share = sizes.record_header_size + sizes.class_directory_entry_size * len(
            record  # type: ignore[arg-type]
        )
        for class_name, entries in record.items():  # type: ignore[union-attr]
            if class_name in wanted:
                position = self.context.position_of_class(class_name)
                assert position is not None
                share += len(entries) * self._entry_size(position)
        return max(1, math.ceil(share / sizes.page_size))

    def range_lookup(
        self,
        low: object,
        high: object,
        target_class: str,
        include_subclasses: bool = False,
    ) -> set[OID]:
        position = self._require_position(target_class)
        wanted = {target_class}
        if include_subclasses:
            wanted.update(
                name
                for name in self.context.database.schema.hierarchy(target_class)
                if name in self.context.members(position)
            )
        result: set[OID] = set()
        for _key, record in self._primary.range_scan(
            self.context.key_of_value(low), self.context.key_of_value(high)
        ):
            for class_name, entries in record.items():  # type: ignore[union-attr]
                if class_name in wanted:
                    result.update(entries)
        return result

    # ------------------------------------------------------------------
    # insertion (Section 3.1, insertion steps 1-4)
    # ------------------------------------------------------------------
    def on_insert(self, instance: ObjectInstance) -> None:
        context = self.context
        position = context.position_of_class(instance.oid.class_name)
        if position is None:
            return
        attribute = context.attribute_at(position)
        database = context.database

        if position == context.end:
            # The object's own values are primary keys (dangling oid
            # values cannot occur on insert, but guard uniformly).
            counts = self._reach_counts(instance, position)
            for key, count in counts.items():
                self._primary_add(key, instance.oid, count, create=True)
            pointers = set(counts)
        else:
            # Step 2: children 3-tuples gain the new parent; their pointer
            # arrays identify the primary records to join.
            children = {
                v
                for v in instance.value_list(attribute)
                if isinstance(v, OID) and database.contains(v)
            }
            pointers = set()
            child_pointers: dict[OID, set[object]] = {}
            for child in sorted(children):
                three_tuple = self._auxiliary.search(child)
                if three_tuple is None:
                    raise IndexError_(
                        f"NIX: child {child} has no 3-tuple "
                        "(insert children before parents)"
                    )
                assert isinstance(three_tuple, ThreeTuple)
                three_tuple.parents.add(instance.oid)
                self._auxiliary.update(
                    child, three_tuple, self._aux_size(three_tuple)
                )
                child_pointers[child] = set(three_tuple.pointers)
                pointers |= three_tuple.pointers
            # Step 3: join each reachable primary record with the correct
            # numchild (= number of distinct children reaching the value).
            for key in sorted(pointers, key=repr):
                record = self._primary.search_direct(key)
                assert record is not None
                count = sum(
                    1 for child in children if key in child_pointers.get(child, ())
                )
                record.setdefault(instance.oid.class_name, {})[instance.oid] = count  # type: ignore[union-attr]
                self._primary.update_direct(
                    key, record, self._primary_size(record)  # type: ignore[arg-type]
                )
        # Step 4: the object's own 3-tuple (non-starting classes only).
        if position > context.start:
            three_tuple = ThreeTuple(
                pointers=pointers,
                parents=self._parents_of(instance.oid, position),
            )
            self._auxiliary.insert(
                instance.oid, three_tuple, self._aux_size(three_tuple)
            )

    def _primary_add(
        self, key: object, oid: OID, count: int, create: bool
    ) -> None:
        record = self._primary.get(key)
        if record is None:
            if not create:
                raise IndexError_(f"NIX: missing primary record for {key!r}")
            new_record: PrimaryRecord = {oid.class_name: {oid: count}}
            self._primary.insert(key, new_record, self._primary_size(new_record))
            return
        record.setdefault(oid.class_name, {})[oid] = count  # type: ignore[union-attr]
        self._primary.update(key, record, self._primary_size(record))  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # deletion (Section 3.1, deletion steps 1-3)
    # ------------------------------------------------------------------
    def on_delete(self, instance: ObjectInstance) -> None:
        context = self.context
        oid = instance.oid
        position = context.position_of_class(oid.class_name)
        if position is None:
            return
        attribute = context.attribute_at(position)
        database = context.database

        # --- step 2: children's 3-tuples lose this parent; collect S.
        if position < context.end:
            children = {
                v
                for v in instance.value_list(attribute)
                if isinstance(v, OID) and database.contains(v)
            }
            for child in sorted(children):
                three_tuple = self._auxiliary.search(child)
                if three_tuple is None:
                    continue
                assert isinstance(three_tuple, ThreeTuple)
                three_tuple.parents.discard(oid)
                self._auxiliary.update(
                    child, three_tuple, self._aux_size(three_tuple)
                )
        # The object's own pointer set S and its removal from the auxiliary.
        if position > context.start:
            own = self._auxiliary.search(oid)
            if own is None:
                raise IndexError_(f"NIX: {oid} has no 3-tuple")
            assert isinstance(own, ThreeTuple)
            pointer_set = set(own.pointers)
            self._auxiliary.delete(oid)
        else:
            pointer_set = {
                context.key_of_value(v)
                for v in self._reach_counts(instance, position)
            }

        # --- step 3: remove from the primary records, walking ancestors.
        for key in sorted(pointer_set, key=repr):
            self._remove_from_record(key, oid, position)

    def _remove_from_record(self, key: object, oid: OID, position: int) -> None:
        """Remove one object from one primary record and propagate upward."""
        context = self.context
        record = self._primary.search_direct(key)
        if record is None:
            raise IndexError_(f"NIX: dangling pointer to primary record {key!r}")
        entries = record.get(oid.class_name, {})  # type: ignore[union-attr]
        if oid not in entries:
            raise IndexError_(f"NIX: {oid} not in primary record {key!r}")
        del entries[oid]
        if not entries:
            record.pop(oid.class_name)  # type: ignore[union-attr]

        removed: list[tuple[OID, int]] = [(oid, position)]
        level = position
        while removed and level > context.start:
            decrements: Counter = Counter()
            parent_level = level - 1
            for removed_oid, removed_position in removed:
                for parent in self._parents_of(removed_oid, removed_position):
                    decrements[parent] += 1
            removed = []
            for parent, amount in sorted(decrements.items()):
                parent_entries = record.get(parent.class_name, {})  # type: ignore[union-attr]
                if parent not in parent_entries:
                    continue
                parent_entries[parent] -= amount
                if parent_entries[parent] <= 0:
                    del parent_entries[parent]
                    if not parent_entries:
                        record.pop(parent.class_name)  # type: ignore[union-attr]
                    removed.append((parent, parent_level))
                    # Steps 3b/3c: strip the pointer from the 3-tuple of a
                    # non-starting-class ancestor.
                    if parent_level > context.start:
                        three_tuple = self._auxiliary.search(parent)
                        if three_tuple is not None:
                            assert isinstance(three_tuple, ThreeTuple)
                            three_tuple.pointers.discard(key)
                            self._auxiliary.update(
                                parent, three_tuple, self._aux_size(three_tuple)
                            )
            level = parent_level

        if record:  # type: ignore[truthy-bool]
            self._primary.update_direct(
                key, record, self._primary_size(record)  # type: ignore[arg-type]
            )
        else:
            self._primary.delete(key)

    # ------------------------------------------------------------------
    # cross-subpath CMD
    # ------------------------------------------------------------------
    def remove_key(self, key: object) -> bool:
        """Drop a whole primary record (the following class's object died).

        Strips the pointers to the record from the 3-tuples of every object
        it listed (``delpoint``), then deletes the record.
        """
        record = self._primary.get(key)
        if record is None:
            return False
        for class_name, entries in record.items():  # type: ignore[union-attr]
            position = self.context.position_of_class(class_name)
            if position is None or position <= self.context.start:
                continue
            for member_oid in sorted(entries):
                three_tuple = self._auxiliary.search(member_oid)
                if three_tuple is None:
                    continue
                assert isinstance(three_tuple, ThreeTuple)
                three_tuple.pointers.discard(key)
                self._auxiliary.update(
                    member_oid, three_tuple, self._aux_size(three_tuple)
                )
        self._primary.delete(key)
        return True

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        context = self.context
        expected_primary: dict[object, PrimaryRecord] = {}
        expected_tuples: dict[OID, ThreeTuple] = {}
        for position in range(context.start, context.end + 1):
            for member in context.members(position):
                for instance in context.database.extent(member):
                    counts = self._reach_counts(instance, position)
                    live = {
                        key: count
                        for key, count in counts.items()
                        if not (
                            isinstance(key, OID)
                            and not context.database.contains(key)
                        )
                    }
                    for key, count in live.items():
                        expected_primary.setdefault(key, {}).setdefault(
                            member, {}
                        )[instance.oid] = count
                    if position > context.start:
                        expected_tuples[instance.oid] = ThreeTuple(
                            pointers=set(live),
                            parents=self._parents_of(instance.oid, position),
                        )
        actual_primary = {
            key: {name: dict(entries) for name, entries in record.items()}  # type: ignore[union-attr]
            for key, record in self._primary.items()
        }
        normalized_expected = {
            key: {name: dict(entries) for name, entries in record.items()}
            for key, record in expected_primary.items()
        }
        if actual_primary != normalized_expected:
            raise IndexError_(f"NIX({context.subpath}): primary index inconsistent")
        actual_tuples = {
            oid: (set(t.pointers), set(t.parents))  # type: ignore[union-attr]
            for oid, t in self._auxiliary.items()
        }
        normalized_tuples = {
            oid: (set(t.pointers), set(t.parents))
            for oid, t in expected_tuples.items()
        }
        if actual_tuples != normalized_tuples:
            raise IndexError_(f"NIX({context.subpath}): auxiliary index inconsistent")
