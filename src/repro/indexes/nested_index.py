"""Operational nested index (NX) — the Section 6 extension from [1, 2].

One B+-tree keyed by the subpath's ending values; each record maps
**starting-hierarchy** oids to the number of instantiation paths through
which they reach the value. Only starting-class queries are index-served;
intermediate-class queries fall back to extent scans. Maintenance of
intermediate objects performs the reverse-closure walk through the heap
(fetching parent objects), which is exactly the expense the paper's NIX
auxiliary index exists to avoid.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import IndexError_
from repro.indexes.base import IndexContext, OperationalIndex
from repro.model.objects import OID, ObjectInstance
from repro.storage.heap import ClassExtent


class NestedIndex(OperationalIndex):
    """Operational NX over one subpath."""

    def __init__(
        self, context: IndexContext, extents: dict[str, ClassExtent]
    ) -> None:
        super().__init__(context)
        self._extents = extents
        ending_atomic = context.path.attribute_def_at(context.end).is_atomic
        self._tree = context.make_structure(
            ending_atomic, f"NX({context.subpath})"
        )
        self._build()

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def _record_size(self, record: dict[OID, int]) -> int:
        sizes = self.context.sizes
        return (
            sizes.record_header_size
            + sizes.key_size(
                atomic=self.context.path.attribute_def_at(
                    self.context.end
                ).is_atomic
            )
            + len(record) * sizes.oid_size
        )

    # ------------------------------------------------------------------
    # path counting
    # ------------------------------------------------------------------
    def _path_counts(self, instance: ObjectInstance, position: int) -> Counter:
        """Instantiation paths from an object to each ending value."""
        context = self.context
        attribute = context.attribute_at(position)
        database = context.database
        counts: Counter = Counter()
        if position == context.end:
            for value in instance.value_list(attribute):
                if isinstance(value, OID) and not database.contains(value):
                    continue
                counts[context.key_of_value(value)] += 1
            return counts
        for value in instance.value_list(attribute):
            if not isinstance(value, OID) or not database.contains(value):
                continue
            child_position = context.position_of_class(value.class_name)
            if child_position is None:
                continue
            child_counts = self._path_counts(database.get(value), child_position)
            for key, count in child_counts.items():
                counts[key] += count
        return counts

    def _root_paths(self, oid: OID, position: int, charge: bool) -> Counter:
        """Paths from every starting-hierarchy object down to ``oid``.

        Walks the reverse references up to the starting level; when
        ``charge`` is set, each visited parent object costs a heap fetch —
        the operational price of having no auxiliary index.
        """
        counts: Counter = Counter({oid: 1})
        level = position
        while level > self.context.start:
            attribute = self.context.attribute_at(level - 1)
            allowed = set(self.context.members(level - 1))
            next_counts: Counter = Counter()
            for current, multiplicity in counts.items():
                for parent in self.context.database.parents_of(current, attribute):
                    if parent.class_name not in allowed:
                        continue
                    occurrences = sum(
                        1
                        for v in self.context.database.get(parent).value_list(
                            attribute
                        )
                        if v == current
                    )
                    if charge:
                        self._extents[parent.class_name].fetch(parent)
                    next_counts[parent] += multiplicity * occurrences
            counts = next_counts
            level -= 1
        return counts

    def _build(self) -> None:
        records: dict[object, dict[OID, int]] = {}
        for member in self.context.members(self.context.start):
            for instance in self.context.database.extent(member):
                for key, count in self._path_counts(
                    instance, self.context.start
                ).items():
                    records.setdefault(key, {})[instance.oid] = count
        for key in sorted(records, key=repr):
            record = records[key]
            self._tree.insert(key, record, self._record_size(record))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(
        self, value: object, target_class: str, include_subclasses: bool = False
    ) -> set[OID]:
        position = self._require_position(target_class)
        key = self.context.key_of_value(value)
        if position == self.context.start:
            wanted = {target_class}
            if include_subclasses:
                wanted.update(
                    name
                    for name in self.context.database.schema.hierarchy(target_class)
                    if name in self.context.members(position)
                )
            record = self._tree.search(key)
            if record is None:
                return set()
            return {
                oid for oid in record if oid.class_name in wanted  # type: ignore[union-attr]
            }
        # Intermediate class: fall back to scanning (the nested index holds
        # no intermediate oids).
        targets = {target_class}
        if include_subclasses:
            targets.update(
                name
                for name in self.context.database.schema.hierarchy(target_class)
                if name in self.context.members(position)
            )
        for member in targets:
            self._extents[member].scan()
        for level in range(position + 1, self.context.end + 1):
            for member in self.context.members(level):
                self._extents[member].scan()
        result: set[OID] = set()
        for member in targets:
            for instance in self.context.database.extent(member):
                values = self.context.nested_values(instance, position)
                if any(self.context.key_of_value(v) == key for v in values):
                    result.add(instance.oid)
        return result

    def range_lookup(
        self,
        low: object,
        high: object,
        target_class: str,
        include_subclasses: bool = False,
    ) -> set[OID]:
        position = self._require_position(target_class)
        low_key = self.context.key_of_value(low)
        high_key = self.context.key_of_value(high)
        if position == self.context.start:
            wanted = {target_class}
            if include_subclasses:
                wanted.update(
                    name
                    for name in self.context.database.schema.hierarchy(target_class)
                    if name in self.context.members(position)
                )
            result: set[OID] = set()
            for _key, record in self._tree.range_scan(low_key, high_key):
                result.update(
                    oid for oid in record if oid.class_name in wanted  # type: ignore[union-attr]
                )
            return result
        # Intermediate class: scan and filter in memory (charged scans).
        targets = {target_class}
        if include_subclasses:
            targets.update(
                name
                for name in self.context.database.schema.hierarchy(target_class)
                if name in self.context.members(position)
            )
        for member in targets:
            self._extents[member].scan()
        for level in range(position + 1, self.context.end + 1):
            for member in self.context.members(level):
                self._extents[member].scan()
        result = set()
        for member in targets:
            for instance in self.context.database.extent(member):
                values = self.context.nested_values(instance, position)
                if any(
                    low_key <= self.context.key_of_value(v) <= high_key  # type: ignore[operator]
                    for v in values
                ):
                    result.add(instance.oid)
        return result

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def on_insert(self, instance: ObjectInstance) -> None:
        context = self.context
        position = context.position_of_class(instance.oid.class_name)
        if position is None:
            return
        if position != context.start:
            return  # no root reaches through a freshly created object
        for key, count in sorted(
            self._path_counts(instance, position).items(), key=lambda kv: repr(kv[0])
        ):
            record = self._tree.get(key)
            record = dict(record) if record is not None else {}  # type: ignore[arg-type]
            record[instance.oid] = record.get(instance.oid, 0) + count
            self._tree.upsert(key, record, self._record_size(record))

    def on_delete(self, instance: ObjectInstance) -> None:
        context = self.context
        position = context.position_of_class(instance.oid.class_name)
        if position is None:
            return
        path_counts = self._path_counts(instance, position)
        if not path_counts:
            return
        if position == context.start:
            deltas = {key: {instance.oid: count} for key, count in path_counts.items()}
        else:
            # Reverse-closure walk (charged): which roots reach through us?
            root_paths = self._root_paths(instance.oid, position, charge=True)
            deltas = {}
            for key, count in path_counts.items():
                deltas[key] = {
                    root: multiplicity * count
                    for root, multiplicity in root_paths.items()
                    if root.class_name in set(context.members(context.start))
                }
        for key in sorted(deltas, key=repr):
            record = self._tree.get(key)
            if record is None:
                continue
            record = dict(record)  # type: ignore[arg-type]
            for root, amount in deltas[key].items():
                if root not in record:
                    continue
                record[root] -= amount
                if record[root] <= 0:
                    del record[root]
            if record:
                self._tree.update(key, record, self._record_size(record))
            else:
                self._tree.delete(key)

    def remove_key(self, key: object) -> bool:
        """Cross-subpath CMD: drop the record for a deleted key oid."""
        if self._tree.contains(key):
            self._tree.delete(key)
            return True
        return False

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        context = self.context
        expected: dict[object, dict[OID, int]] = {}
        for member in context.members(context.start):
            for instance in context.database.extent(member):
                for key, count in self._path_counts(
                    instance, context.start
                ).items():
                    expected.setdefault(key, {})[instance.oid] = count
        actual = {
            key: dict(record)  # type: ignore[arg-type]
            for key, record in self._tree.items()
        }
        if expected != actual:
            raise IndexError_(f"NX({context.subpath}): root counts inconsistent")
