"""Operational no-index evaluation: full extent scans.

The operational counterpart of
:class:`~repro.costmodel.noindex.NoIndexCostModel`: with no index on a
subpath, an equality query against its ending attribute scans the class
extents of the subpath bottom-up (references are forward-only, so the
evaluator builds the reachable-value sets level by level in memory).
Maintenance costs nothing.
"""

from __future__ import annotations

from repro.indexes.base import IndexContext, OperationalIndex
from repro.model.objects import OID, ObjectInstance
from repro.storage.heap import ClassExtent


class ScanIndex(OperationalIndex):
    """Evaluate subpath predicates by scanning extents (no index)."""

    def __init__(
        self, context: IndexContext, extents: dict[str, ClassExtent]
    ) -> None:
        super().__init__(context)
        self._extents = extents

    def lookup(
        self, value: object, target_class: str, include_subclasses: bool = False
    ) -> set[OID]:
        position = self._require_position(target_class)
        context = self.context
        key = context.key_of_value(value)
        # Charge sequential scans of every extent from the target level down.
        targets = {target_class}
        if include_subclasses:
            targets.update(
                name
                for name in context.database.schema.hierarchy(target_class)
                if name in context.members(position)
            )
        for member in targets:
            self._extents[member].scan()
        for level in range(position + 1, context.end + 1):
            for member in context.members(level):
                self._extents[member].scan()
        # Evaluate in memory (the scans already paid the page accesses).
        result: set[OID] = set()
        for member in targets:
            for instance in context.database.extent(member):
                values = context.nested_values(instance, position)
                if any(context.key_of_value(v) == key for v in values):
                    result.add(instance.oid)
        return result

    def range_lookup(
        self,
        low: object,
        high: object,
        target_class: str,
        include_subclasses: bool = False,
    ) -> set[OID]:
        position = self._require_position(target_class)
        context = self.context
        low_key = context.key_of_value(low)
        high_key = context.key_of_value(high)
        targets = {target_class}
        if include_subclasses:
            targets.update(
                name
                for name in context.database.schema.hierarchy(target_class)
                if name in context.members(position)
            )
        for member in targets:
            self._extents[member].scan()
        for level in range(position + 1, context.end + 1):
            for member in context.members(level):
                self._extents[member].scan()
        result: set[OID] = set()
        for member in targets:
            for instance in context.database.extent(member):
                values = context.nested_values(instance, position)
                if any(
                    low_key <= context.key_of_value(v) <= high_key  # type: ignore[operator]
                    for v in values
                ):
                    result.add(instance.oid)
        return result

    def on_insert(self, instance: ObjectInstance) -> None:
        """No index structure to maintain."""

    def on_delete(self, instance: ObjectInstance) -> None:
        """No index structure to maintain."""

    def remove_key(self, key: object) -> bool:
        """Nothing to remove; reported for interface symmetry."""
        return False

    def check_consistency(self) -> None:
        """Scans have no materialized state; always consistent."""
