"""Multi-inherited index (MIX): an inherited index per class level.

"A multi-inherited index differs from a multi-index in the sense that [it]
allocates an index on all classes ∈ class(P) while the multi-index
allocates an index on all classes ∈ scope(P)" (Section 2.2): one index per
*level*, covering the level's whole inheritance hierarchy.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import IndexError_
from repro.indexes.base import IndexContext, OperationalIndex
from repro.indexes.inherited import InheritedIndex
from repro.model.objects import OID, ObjectInstance


class MultiInheritedIndex(OperationalIndex):
    """MIX over a subpath: one :class:`InheritedIndex` per class level."""

    def __init__(self, context: IndexContext) -> None:
        super().__init__(context)
        self._components: dict[int, InheritedIndex] = {}
        for position in range(context.start, context.end + 1):
            level_context = replace(context, start=position, end=position)
            self._components[position] = InheritedIndex(level_context)

    def component(self, position: int) -> InheritedIndex:
        """The inherited index at one level."""
        try:
            return self._components[position]
        except KeyError:
            raise IndexError_(f"MIX has no component at position {position}") from None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(
        self, value: object, target_class: str, include_subclasses: bool = False
    ) -> set[OID]:
        position = self._require_position(target_class)
        keys: set[object] = {self.context.key_of_value(value)}
        for level in range(self.context.end, position, -1):
            next_keys: set[object] = set()
            component = self._components[level]
            for key in keys:
                next_keys.update(component.lookup_hierarchy(key))
            keys = next_keys
            if not keys:
                return set()
        result: set[OID] = set()
        component = self._components[position]
        for key in keys:
            result.update(
                component.lookup(key, target_class, include_subclasses)
            )
        return result

    def range_lookup(
        self,
        low: object,
        high: object,
        target_class: str,
        include_subclasses: bool = False,
    ) -> set[OID]:
        position = self._require_position(target_class)
        if position == self.context.end:
            return self._components[position].range_lookup(
                low, high, target_class, include_subclasses
            )
        keys: set[object] = set(
            self._components[self.context.end].range_lookup_hierarchy(low, high)
        )
        for level in range(self.context.end - 1, position, -1):
            next_keys: set[object] = set()
            component = self._components[level]
            for key in keys:
                next_keys.update(component.lookup_hierarchy(key))
            keys = next_keys
            if not keys:
                return set()
        result: set[OID] = set()
        component = self._components[position]
        for key in keys:
            result.update(component.lookup(key, target_class, include_subclasses))
        return result

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def on_insert(self, instance: ObjectInstance) -> None:
        position = self.context.position_of_class(instance.oid.class_name)
        if position is None:
            return
        self._components[position].on_insert(instance)

    def on_delete(self, instance: ObjectInstance) -> None:
        position = self.context.position_of_class(instance.oid.class_name)
        if position is None:
            return
        self._components[position].on_delete(instance)
        if position > self.context.start:
            self._components[position - 1].remove_key(instance.oid)

    def remove_key(self, key: object) -> None:
        """Cross-subpath CMD: drop the ending-level record keyed by ``key``."""
        self._components[self.context.end].remove_key(key)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        for component in self._components.values():
            component.check_consistency()
