"""Simple index (SIX): one attribute of one class.

"A simple index is an index on an attribute of a single class. With each
value v of the indexed attribute the oids of the objects are associated
which have v as value for the indexed attribute" (Section 2.2). Objects of
subclasses are *not* covered — that is the inherited index's job.

As an :class:`~repro.indexes.base.OperationalIndex` it serves length-1
subpaths; it is also the per-class component of the multi-index.
"""

from __future__ import annotations

from repro.errors import IndexError_
from repro.indexes.base import IndexContext, OperationalIndex
from repro.indexes.value_index import ValueIndex
from repro.model.objects import OID, ObjectInstance


class SimpleIndex(OperationalIndex):
    """SIX on attribute ``A_start`` of exactly one class.

    Parameters
    ----------
    context:
        Must cover a length-1 subpath (``start == end``).
    class_name:
        The indexed class; defaults to the subpath's root class.
    """

    def __init__(self, context: IndexContext, class_name: str | None = None) -> None:
        super().__init__(context)
        if context.start != context.end:
            raise IndexError_("a simple index covers exactly one class")
        self.class_name = class_name or context.path.class_at(context.start)
        if self.class_name not in context.members(context.start):
            raise IndexError_(
                f"class {self.class_name!r} not in the hierarchy at position "
                f"{context.start}"
            )
        attribute = context.path.attribute_def_at(context.start)
        self.attribute = attribute.name
        self._values = ValueIndex(
            pager=context.pager,
            sizes=context.sizes,
            name=f"SIX({self.class_name}.{self.attribute})",
            atomic_keys=attribute.is_atomic,
            classes=[self.class_name],
            grouped=False,
            layout=context.layout,
        )
        for instance in context.database.extent(self.class_name):
            self._load(instance)

    def _load(self, instance: ObjectInstance) -> None:
        for value in set(instance.value_list(self.attribute)):
            self._values.add(self.context.key_of_value(value), instance.oid)

    # ------------------------------------------------------------------
    # OperationalIndex interface
    # ------------------------------------------------------------------
    def lookup(
        self, value: object, target_class: str, include_subclasses: bool = False
    ) -> set[OID]:
        if target_class != self.class_name:
            raise IndexError_(
                f"SIX on {self.class_name!r} cannot answer for {target_class!r}"
            )
        return self._values.lookup(self.context.key_of_value(value))

    def range_lookup(
        self,
        low: object,
        high: object,
        target_class: str,
        include_subclasses: bool = False,
    ) -> set[OID]:
        if target_class != self.class_name:
            raise IndexError_(
                f"SIX on {self.class_name!r} cannot answer for {target_class!r}"
            )
        return self._values.range_lookup(low, high)

    def on_insert(self, instance: ObjectInstance) -> None:
        if instance.oid.class_name != self.class_name:
            return
        self._load(instance)

    def on_delete(self, instance: ObjectInstance) -> None:
        if instance.oid.class_name != self.class_name:
            return
        for value in set(instance.value_list(self.attribute)):
            # A value referencing an already-deleted object has no record:
            # it was dropped when the referenced object died (the CMD
            # maintenance of Section 3.1).
            if isinstance(value, OID) and not self.context.database.contains(value):
                continue
            self._values.remove(self.context.key_of_value(value), instance.oid)

    def remove_key(self, key: object) -> bool:
        """Drop the whole record stored under ``key`` (cross-subpath CMD).

        Returns whether a record existed. Used when the object whose oid is
        the key value is deleted from the *following* subpath.
        """
        if self._values.tree.contains(key):
            self._values.tree.delete(key)
            return True
        return False

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        database = self.context.database
        expected: dict[object, set[OID]] = {}
        for instance in database.extent(self.class_name):
            for value in set(instance.value_list(self.attribute)):
                # Records keyed by dangling oids are dropped when the
                # referenced object is deleted (the CMD maintenance).
                if isinstance(value, OID) and not database.contains(value):
                    continue
                expected.setdefault(value, set()).add(instance.oid)
        actual = {
            key: set(record.get(self.class_name, ()))
            for key, record in self._values.entries().items()
        }
        if expected != actual:
            raise IndexError_(
                f"SIX({self.class_name}.{self.attribute}) inconsistent: "
                f"{len(expected)} expected keys vs {len(actual)} stored"
            )
