"""Materializing a full index configuration over a database.

:class:`ConfigurationIndexSet` builds one operational index per
``(subpath, organization)`` pair of an
:class:`~repro.core.configuration.IndexConfiguration`, wires maintenance
routing (including the cross-subpath ``CMD`` action: deleting an object of
a subpath's starting class removes the record keyed by its oid from the
*preceding* subpath's index), and answers full-path queries by chaining
subpath lookups from the ending attribute backwards.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.errors import IndexError_
from repro.indexes.base import IndexContext, OperationalIndex
from repro.indexes.inherited import InheritedIndex
from repro.indexes.multi import MultiIndex
from repro.indexes.multi_inherited import MultiInheritedIndex
from repro.indexes.nested_index import NestedIndex
from repro.indexes.nested_inherited import NestedInheritedIndex
from repro.indexes.path_index import PathIndex
from repro.indexes.scan import ScanIndex
from repro.indexes.simple import SimpleIndex
from repro.model.objects import OID, OODatabase
from repro.model.path import Path
from repro.organizations import IndexOrganization
from repro.storage.heap import ClassExtent
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel


@dataclass
class _Part:
    """A configuration part with its materialized index."""

    assignment: IndexedSubpath
    index: OperationalIndex


def part_label(assignment: IndexedSubpath) -> str:
    """Owner label of one configuration part, e.g. ``"S[1,3]:NIX"``.

    The backend's tracker groups measured page I/O under these labels, so
    replay reports can show costs per (subpath, organization).
    """
    return (
        f"S[{assignment.start},{assignment.end}]:{assignment.organization.name}"
    )


class ConfigurationIndexSet:
    """All operational structures of one configuration on one database."""

    def __init__(
        self,
        database: OODatabase,
        path: Path,
        configuration: IndexConfiguration,
        sizes: SizeModel | None = None,
        pager: Pager | None = None,
        layout: str = "btree",
    ) -> None:
        if configuration.length != path.length:
            raise IndexError_(
                f"configuration covers {configuration.length} positions but "
                f"{path} has length {path.length}"
            )
        self.database = database
        self.path = path
        self.configuration = configuration
        self.sizes = sizes or SizeModel()
        self.pager = pager or Pager(page_size=self.sizes.page_size)
        self.layout = layout

        # Heap extents: a page contains objects of only one class.
        self.extents: dict[str, ClassExtent] = {}
        for class_name in path.scope:
            with self._scope(f"heap:{class_name}"):
                extent = ClassExtent(
                    self.pager, self.sizes, class_name, self.sizes.object_size
                )
                for instance in database.extent(class_name):
                    extent.place(instance.oid)
            self.extents[class_name] = extent

        self._parts: list[_Part] = []
        for assignment in configuration.assignments:
            context = IndexContext(
                database=database,
                path=path,
                start=assignment.start,
                end=assignment.end,
                pager=self.pager,
                sizes=self.sizes,
                layout=layout,
            )
            with self._scope(part_label(assignment)):
                index = self._build(context, assignment)
            self._parts.append(_Part(assignment=assignment, index=index))

    def _scope(self, label: str):
        """Attribute page allocations to an owner label, when tracked.

        A plain :class:`~repro.storage.pager.Pager` has no ``owner``
        hook; the backend's ``PageAccessTracker`` provides one, which
        splits measured I/O per (subpath, organization) and per heap.
        """
        owner = getattr(self.pager, "owner", None)
        return owner(label) if owner is not None else nullcontext()

    def _build(
        self, context: IndexContext, assignment: IndexedSubpath
    ) -> OperationalIndex:
        organization = assignment.organization
        if organization is IndexOrganization.SIX:
            return SimpleIndex(context)
        if organization is IndexOrganization.IIX:
            return InheritedIndex(context)
        if organization is IndexOrganization.MX:
            return MultiIndex(context)
        if organization is IndexOrganization.MIX:
            return MultiInheritedIndex(context)
        if organization is IndexOrganization.NIX:
            return NestedInheritedIndex(context)
        if organization is IndexOrganization.PX:
            return PathIndex(context)
        if organization is IndexOrganization.NX:
            return NestedIndex(context, self.extents)
        if organization is IndexOrganization.NONE:
            return ScanIndex(context, self.extents)
        raise IndexError_(f"no operational index for {organization}")

    # ------------------------------------------------------------------
    # structure access
    # ------------------------------------------------------------------
    def parts(self) -> list[tuple[IndexedSubpath, OperationalIndex]]:
        """The configuration's parts with their indexes, in path order."""
        return [(part.assignment, part.index) for part in self._parts]

    def part_for_position(self, position: int) -> tuple[IndexedSubpath, OperationalIndex]:
        """The part whose subpath covers a (full-path) position."""
        for part in self._parts:
            if part.assignment.start <= position <= part.assignment.end:
                return part.assignment, part.index
        raise IndexError_(f"position {position} not covered")

    def _position_of_class(self, class_name: str) -> int:
        for position in range(1, self.path.length + 1):
            if class_name in self.path.hierarchy_at(position):
                return position
        raise IndexError_(f"class {class_name!r} not in scope of {self.path}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self,
        value: object,
        target_class: str,
        include_subclasses: bool = False,
        fetch_objects: bool = False,
    ) -> set[OID]:
        """Objects of ``target_class`` whose nested ``A_n`` equals ``value``.

        Chains the subpath indexes from the last subpath backwards, exactly
        like the evaluation Section 4 describes. With ``fetch_objects`` the
        qualifying objects' heap pages are also charged.
        """
        position = self._position_of_class(target_class)
        part_index = None
        for i, part in enumerate(self._parts):
            if part.assignment.start <= position <= part.assignment.end:
                part_index = i
                break
        assert part_index is not None

        probes: list[object] = [value]
        for i in range(len(self._parts) - 1, part_index, -1):
            part = self._parts[i]
            root = self.path.class_at(part.assignment.start)
            oids = part.index.lookup_many(probes, root, include_subclasses=True)
            probes = sorted(oids)
            if not probes:
                return set()
        target_part = self._parts[part_index]
        result = target_part.index.lookup_many(
            probes, target_class, include_subclasses=include_subclasses
        )
        if fetch_objects and result:
            by_class: dict[str, list[OID]] = {}
            for oid in result:
                by_class.setdefault(oid.class_name, []).append(oid)
            for class_name, oids in by_class.items():
                self.extents[class_name].fetch_many(oids)
        return result

    def range_query(
        self,
        low: object,
        high: object,
        target_class: str,
        include_subclasses: bool = False,
    ) -> set[OID]:
        """Objects whose nested ``A_n`` falls in ``[low, high]``.

        The final subpath performs a contiguous leaf walk; earlier
        subpaths are probed with the resulting oid sets.
        """
        position = self._position_of_class(target_class)
        part_index = None
        for i, part in enumerate(self._parts):
            if part.assignment.start <= position <= part.assignment.end:
                part_index = i
                break
        assert part_index is not None
        last = self._parts[-1]
        if part_index == len(self._parts) - 1:
            return last.index.range_lookup(
                low, high, target_class, include_subclasses
            )
        root = self.path.class_at(last.assignment.start)
        oids = last.index.range_lookup(low, high, root, include_subclasses=True)
        probes: list[object] = sorted(oids)
        for i in range(len(self._parts) - 2, part_index, -1):
            part = self._parts[i]
            part_root = self.path.class_at(part.assignment.start)
            oids = part.index.lookup_many(probes, part_root, include_subclasses=True)
            probes = sorted(oids)
            if not probes:
                return set()
        target_part = self._parts[part_index]
        return target_part.index.lookup_many(
            probes, target_class, include_subclasses=include_subclasses
        )

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert(self, class_name: str, **values: object) -> OID:
        """Create an object and maintain every affected structure."""
        oid = self.database.create(class_name, **values)
        instance = self.database.get(oid)
        with self._scope(f"heap:{class_name}"):
            self.extents[class_name].place(oid)
        for part in self._parts:
            if part.index.covers_class(class_name):
                with self._scope(part_label(part.assignment)):
                    part.index.on_insert(instance)
        return oid

    def delete(self, oid: OID) -> None:
        """Delete an object, maintaining indexes and the CMD dependency."""
        instance = self.database.get(oid)
        position = self._position_of_class(oid.class_name)
        for i, part in enumerate(self._parts):
            if part.assignment.start <= position <= part.assignment.end:
                with self._scope(part_label(part.assignment)):
                    part.index.on_delete(instance)
                # CMD: if the object belongs to the starting class level of
                # this subpath, the preceding subpath's index holds records
                # keyed by its oid.
                if position == part.assignment.start and i > 0:
                    previous = self._parts[i - 1]
                    remove = getattr(previous.index, "remove_key", None)
                    if remove is not None:
                        with self._scope(part_label(previous.assignment)):
                            remove(oid)
                break
        with self._scope(f"heap:{oid.class_name}"):
            self.extents[oid.class_name].remove(oid)
        self.database.delete(oid)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Verify every index against the database."""
        for part in self._parts:
            part.index.check_consistency()
