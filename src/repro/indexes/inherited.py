"""Inherited index (IIX): one attribute of a whole class hierarchy.

"An inherited index is an index on an attribute of all classes of a class
inheritance hierarchy rooted at a particular class" (Section 2.2, after
[Kim, Kim & Dale 89], a.k.a. the class-hierarchy index). One B+-tree
covers the root and every subclass; records group oids per class so a
query scoped to a subset of the hierarchy retrieves only the relevant
pages of an oversized record.
"""

from __future__ import annotations

from repro.errors import IndexError_
from repro.indexes.base import IndexContext, OperationalIndex
from repro.indexes.value_index import ValueIndex
from repro.model.objects import OID, ObjectInstance


class InheritedIndex(OperationalIndex):
    """IIX on attribute ``A_start`` of the hierarchy at the subpath's class."""

    def __init__(self, context: IndexContext) -> None:
        super().__init__(context)
        if context.start != context.end:
            raise IndexError_("an inherited index covers exactly one class level")
        self.root_class = context.path.class_at(context.start)
        self.classes = list(context.members(context.start))
        attribute = context.path.attribute_def_at(context.start)
        self.attribute = attribute.name
        self._values = ValueIndex(
            pager=context.pager,
            sizes=context.sizes,
            name=f"IIX({self.root_class}.{self.attribute})",
            atomic_keys=attribute.is_atomic,
            classes=self.classes,
            grouped=True,
            layout=context.layout,
        )
        for class_name in self.classes:
            for instance in context.database.extent(class_name):
                self._load(instance)

    def _load(self, instance: ObjectInstance) -> None:
        for value in set(instance.value_list(self.attribute)):
            self._values.add(self.context.key_of_value(value), instance.oid)

    # ------------------------------------------------------------------
    # OperationalIndex interface
    # ------------------------------------------------------------------
    def lookup(
        self, value: object, target_class: str, include_subclasses: bool = False
    ) -> set[OID]:
        if target_class not in self.classes:
            raise IndexError_(
                f"IIX on {self.root_class!r} cannot answer for {target_class!r}"
            )
        wanted = {target_class}
        if include_subclasses:
            wanted.update(
                name
                for name in self.context.database.schema.hierarchy(target_class)
            )
        return self._values.lookup(self.context.key_of_value(value), classes=wanted)

    def lookup_hierarchy(self, value: object) -> set[OID]:
        """All oids under a value, across the whole hierarchy."""
        return self._values.lookup(self.context.key_of_value(value))

    def range_lookup(
        self,
        low: object,
        high: object,
        target_class: str,
        include_subclasses: bool = False,
    ) -> set[OID]:
        if target_class not in self.classes:
            raise IndexError_(
                f"IIX on {self.root_class!r} cannot answer for {target_class!r}"
            )
        wanted = {target_class}
        if include_subclasses:
            wanted.update(self.context.database.schema.hierarchy(target_class))
        return self._values.range_lookup(low, high, classes=wanted)

    def range_lookup_hierarchy(self, low: object, high: object) -> set[OID]:
        """Range retrieval across the whole hierarchy."""
        return self._values.range_lookup(low, high)

    def on_insert(self, instance: ObjectInstance) -> None:
        if instance.oid.class_name not in self.classes:
            return
        self._load(instance)

    def on_delete(self, instance: ObjectInstance) -> None:
        if instance.oid.class_name not in self.classes:
            return
        for value in set(instance.value_list(self.attribute)):
            # Records keyed by dangling oids were dropped when the
            # referenced object died (CMD maintenance).
            if isinstance(value, OID) and not self.context.database.contains(value):
                continue
            self._values.remove(self.context.key_of_value(value), instance.oid)

    def remove_key(self, key: object) -> bool:
        """Drop the record stored under ``key`` (cross-subpath CMD)."""
        if self._values.tree.contains(key):
            self._values.tree.delete(key)
            return True
        return False

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        database = self.context.database
        expected: dict[object, dict[str, set[OID]]] = {}
        for class_name in self.classes:
            for instance in database.extent(class_name):
                for value in set(instance.value_list(self.attribute)):
                    if isinstance(value, OID) and not database.contains(value):
                        continue
                    expected.setdefault(value, {}).setdefault(
                        class_name, set()
                    ).add(instance.oid)
        actual: dict[object, dict[str, set[OID]]] = {}
        for key, record in self._values.entries().items():
            actual[key] = {name: set(oids) for name, oids in record.items()}
        if expected != actual:
            raise IndexError_(
                f"IIX({self.root_class}.{self.attribute}) inconsistent"
            )
