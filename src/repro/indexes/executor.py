"""Measured execution of path operations.

:class:`PathQueryExecutor` wraps a
:class:`~repro.indexes.manager.ConfigurationIndexSet` and measures the
page accesses of individual operations — the *measured* counterpart of the
paper's analytic expected costs, used by the validation harness and the
validation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.indexes.manager import ConfigurationIndexSet
from repro.model.objects import OID
from repro.storage.pager import AccessStats


@dataclass(frozen=True)
class MeasuredQuery:
    """Result and cost of one measured query."""

    oids: frozenset[OID]
    stats: AccessStats


@dataclass(frozen=True)
class MeasuredUpdate:
    """Cost of one measured insert/delete (the affected oid included)."""

    oid: OID
    stats: AccessStats


class PathQueryExecutor:
    """Run path operations and report their page-access costs."""

    def __init__(self, indexes: ConfigurationIndexSet) -> None:
        self.indexes = indexes

    def query(
        self,
        value: object,
        target_class: str,
        include_subclasses: bool = False,
        fetch_objects: bool = False,
        buffered: bool = True,
    ) -> MeasuredQuery:
        """Measure an equality query against the path's ending attribute."""
        with self.indexes.pager.measure(buffered=buffered) as measurement:
            oids = self.indexes.query(
                value,
                target_class,
                include_subclasses=include_subclasses,
                fetch_objects=fetch_objects,
            )
        assert measurement.result is not None
        return MeasuredQuery(oids=frozenset(oids), stats=measurement.result)

    def range_query(
        self,
        low: object,
        high: object,
        target_class: str,
        include_subclasses: bool = False,
        buffered: bool = True,
    ) -> MeasuredQuery:
        """Measure a range predicate against the path's ending attribute."""
        with self.indexes.pager.measure(buffered=buffered) as measurement:
            oids = self.indexes.range_query(
                low, high, target_class, include_subclasses=include_subclasses
            )
        assert measurement.result is not None
        return MeasuredQuery(oids=frozenset(oids), stats=measurement.result)

    def insert(self, class_name: str, buffered: bool = True, **values: object) -> MeasuredUpdate:
        """Measure an object insertion (index maintenance included)."""
        with self.indexes.pager.measure(buffered=buffered) as measurement:
            oid = self.indexes.insert(class_name, **values)
        assert measurement.result is not None
        return MeasuredUpdate(oid=oid, stats=measurement.result)

    def delete(self, oid: OID, buffered: bool = True) -> MeasuredUpdate:
        """Measure an object deletion (index maintenance included)."""
        with self.indexes.pager.measure(buffered=buffered) as measurement:
            self.indexes.delete(oid)
        assert measurement.result is not None
        return MeasuredUpdate(oid=oid, stats=measurement.result)
