"""Shared context and interface for the operational indexes.

An operational index is bound to a *subpath* of a path over a populated
:class:`~repro.model.objects.OODatabase`. It supports equality lookups
against the subpath's ending attribute and is maintained on object
insertion and deletion. All page accesses flow through the shared
:class:`~repro.storage.pager.Pager`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from functools import cached_property

from repro.errors import IndexError_
from repro.model.objects import OID, ObjectInstance, OODatabase
from repro.model.path import Path
from repro.storage.btree import BPlusTree
from repro.storage.chains import ChainedRecordStore
from repro.storage.hashdir import HashDirectory
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel

#: Physical layouts an index context can materialize its structures in.
#: ``btree`` is the paper's default; ``hash`` swaps equality-only
#: structures for hash directories and NIX primaries for chained record
#: stores (range predicates become unsupported).
LAYOUTS = ("btree", "hash")


@dataclass
class IndexContext:
    """Everything an operational index needs to exist.

    Attributes
    ----------
    database:
        The populated object store.
    path:
        The **full** path; the index covers ``positions start..end`` of it.
    start, end:
        1-based inclusive subpath bounds.
    pager:
        The accounting pager shared by all structures of an experiment.
    sizes:
        Physical constants (must match the pager's page size).
    layout:
        Physical layout for the index structures (see :data:`LAYOUTS`).
    """

    database: OODatabase
    path: Path
    start: int
    end: int
    pager: Pager
    sizes: SizeModel
    layout: str = "btree"

    def __post_init__(self) -> None:
        if not 1 <= self.start <= self.end <= self.path.length:
            raise IndexError_(
                f"subpath {self.start}..{self.end} out of range for {self.path}"
            )
        if self.pager.page_size != self.sizes.page_size:
            raise IndexError_("pager and size model disagree on page size")
        if self.layout not in LAYOUTS:
            raise IndexError_(
                f"unknown layout {self.layout!r} (choose from {LAYOUTS})"
            )

    def make_structure(
        self, atomic_keys: bool, name: str, chained: bool = False
    ) -> BPlusTree | HashDirectory | ChainedRecordStore:
        """Build a keyed page structure in the context's layout.

        ``chained=True`` marks structures holding few large records (NIX
        primaries): under the hash layout these become
        :class:`~repro.storage.chains.ChainedRecordStore` instead of a
        hash directory.
        """
        if self.layout == "hash":
            if chained:
                return ChainedRecordStore(
                    self.pager, self.sizes, atomic_keys=atomic_keys, name=name
                )
            return HashDirectory(
                self.pager, self.sizes, atomic_keys=atomic_keys, name=name
            )
        return BPlusTree(
            self.pager, self.sizes, atomic_keys=atomic_keys, name=name
        )

    @cached_property
    def subpath(self) -> Path:
        """The covered subpath as a :class:`~repro.model.path.Path`."""
        return self.path.subpath(self.start, self.end)

    def members(self, position: int) -> list[str]:
        """Hierarchy members of the class at a (full-path) position."""
        return self.path.hierarchy_at(position)

    def position_of_class(self, class_name: str) -> int | None:
        """The covered position whose hierarchy contains ``class_name``."""
        for position in range(self.start, self.end + 1):
            if class_name in self.members(position):
                return position
        return None

    def attribute_at(self, position: int) -> str:
        """``A_position`` of the full path."""
        return self.path.attribute_at(position)

    def ending_attribute(self) -> str:
        """The subpath's ending attribute ``A_end``."""
        return self.path.attribute_at(self.end)

    def key_of_value(self, value: object) -> object:
        """Normalize an attribute value into an index key.

        Oids key by themselves (they are ordered); atomic values must be
        mutually comparable, which the schema's typed domains guarantee.
        """
        return value

    def nested_values(self, instance: ObjectInstance, position: int) -> list[object]:
        """Values of the subpath's ending attribute reachable from an object.

        For an object at ``position`` this follows the forward references
        down to ``A_end`` and returns the reached values *with multiplicity*
        (the multiplicities are exactly the ``numchild`` counts).
        """
        frontier: list[ObjectInstance] = [instance]
        for level in range(position, self.end):
            attribute = self.attribute_at(level)
            next_frontier: list[ObjectInstance] = []
            for obj in frontier:
                for value in obj.value_list(attribute):
                    if isinstance(value, OID) and self.database.contains(value):
                        next_frontier.append(self.database.get(value))
            frontier = next_frontier
        ending = self.ending_attribute()
        values: list[object] = []
        for obj in frontier:
            for value in obj.value_list(ending):
                # Dangling reference values are dead keys.
                if isinstance(value, OID) and not self.database.contains(value):
                    continue
                values.append(value)
        return values


class OperationalIndex(abc.ABC):
    """Interface of a working index on one subpath."""

    def __init__(self, context: IndexContext) -> None:
        self.context = context

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def lookup(
        self, value: object, target_class: str, include_subclasses: bool = False
    ) -> set[OID]:
        """Oids of ``target_class`` objects whose nested attribute holds
        ``value``.

        ``target_class`` must belong to a hierarchy covered by the subpath.
        """

    def lookup_many(
        self, values: list[object], target_class: str, include_subclasses: bool = False
    ) -> set[OID]:
        """Union of lookups over several probe values."""
        result: set[OID] = set()
        for value in values:
            result |= self.lookup(value, target_class, include_subclasses)
        return result

    def range_lookup(
        self,
        low: object,
        high: object,
        target_class: str,
        include_subclasses: bool = False,
    ) -> set[OID]:
        """Oids whose nested attribute falls in ``[low, high]``.

        The default raises; organizations with a chained ending structure
        override it with a contiguous leaf walk.
        """
        raise IndexError_(
            f"{type(self).__name__} does not support range predicates"
        )

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_insert(self, instance: ObjectInstance) -> None:
        """Maintain the index after ``instance`` was added to the database."""

    @abc.abstractmethod
    def on_delete(self, instance: ObjectInstance) -> None:
        """Maintain the index before ``instance`` is removed from the database."""

    # ------------------------------------------------------------------
    # verification (uncounted)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def check_consistency(self) -> None:
        """Verify the index contents against the database; raise on mismatch."""

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def covers_class(self, class_name: str) -> bool:
        """Whether maintenance events of this class concern the index."""
        return self.context.position_of_class(class_name) is not None

    def _require_position(self, class_name: str) -> int:
        position = self.context.position_of_class(class_name)
        if position is None:
            raise IndexError_(
                f"class {class_name!r} is not covered by subpath "
                f"{self.context.subpath}"
            )
        return position
