"""Operational path index (PX) — the Section 6 extension from [6].

One B+-tree keyed by the subpath's ending-attribute values; each record
holds the *maximal path instantiations* reaching the value: oid tuples
``(o_i, ..., o_t)`` following forward references, where the head ``o_i``
has no in-path parent (so the tuple cannot be extended upward). Every
class of the subpath is queryable by projecting its position out of the
tuples; maintenance is self-contained because each instantiation lists all
its members explicitly.
"""

from __future__ import annotations

from repro.errors import IndexError_
from repro.indexes.base import IndexContext, OperationalIndex
from repro.model.objects import OID, ObjectInstance

#: A stored record: a sorted tuple of instantiation tuples.
Instantiation = tuple[OID, ...]


class PathIndex(OperationalIndex):
    """Operational PX over one subpath."""

    def __init__(self, context: IndexContext) -> None:
        super().__init__(context)
        ending_atomic = context.path.attribute_def_at(context.end).is_atomic
        self._tree = context.make_structure(
            ending_atomic, f"PX({context.subpath})"
        )
        self._build()

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def _record_size(self, record: dict[Instantiation, bool]) -> int:
        sizes = self.context.sizes
        total = sizes.record_header_size + sizes.key_size(
            atomic=self.context.path.attribute_def_at(self.context.end).is_atomic
        )
        for instantiation in record:
            total += len(instantiation) * sizes.oid_size
        return total

    # ------------------------------------------------------------------
    # chain enumeration
    # ------------------------------------------------------------------
    def _chains_from(
        self, instance: ObjectInstance, position: int
    ) -> list[tuple[Instantiation, object]]:
        """All forward chains ``(oid tuple, ending value)`` from an object."""
        context = self.context
        attribute = context.attribute_at(position)
        database = context.database
        if position == context.end:
            results = []
            for value in instance.value_list(attribute):
                if isinstance(value, OID) and not database.contains(value):
                    continue
                results.append(((instance.oid,), context.key_of_value(value)))
            return results
        chains: list[tuple[Instantiation, object]] = []
        for value in instance.value_list(attribute):
            if not isinstance(value, OID) or not database.contains(value):
                continue
            child_position = context.position_of_class(value.class_name)
            if child_position is None:
                continue
            for suffix, key in self._chains_from(database.get(value), child_position):
                chains.append(((instance.oid, *suffix), key))
        return chains

    def _has_in_path_parent(self, oid: OID, position: int) -> bool:
        if position <= self.context.start:
            return False
        attribute = self.context.attribute_at(position - 1)
        allowed = set(self.context.members(position - 1))
        return any(
            parent.class_name in allowed
            for parent in self.context.database.parents_of(oid, attribute)
        )

    def _build(self) -> None:
        records: dict[object, dict[Instantiation, bool]] = {}
        context = self.context
        for position in range(context.start, context.end + 1):
            for member in context.members(position):
                for instance in context.database.extent(member):
                    if self._has_in_path_parent(instance.oid, position):
                        continue  # not a maximal head
                    for chain, key in self._chains_from(instance, position):
                        records.setdefault(key, {})[chain] = True
        for key in sorted(records, key=repr):
            record = records[key]
            self._tree.insert(key, record, self._record_size(record))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(
        self, value: object, target_class: str, include_subclasses: bool = False
    ) -> set[OID]:
        position = self._require_position(target_class)
        wanted = {target_class}
        if include_subclasses:
            wanted.update(
                name
                for name in self.context.database.schema.hierarchy(target_class)
                if name in self.context.members(position)
            )
        record = self._tree.search(self.context.key_of_value(value))
        if record is None:
            return set()
        result: set[OID] = set()
        for instantiation in record:  # type: ignore[union-attr]
            for oid in instantiation:
                if oid.class_name in wanted:
                    result.add(oid)
        return result

    def range_lookup(
        self,
        low: object,
        high: object,
        target_class: str,
        include_subclasses: bool = False,
    ) -> set[OID]:
        position = self._require_position(target_class)
        wanted = {target_class}
        if include_subclasses:
            wanted.update(
                name
                for name in self.context.database.schema.hierarchy(target_class)
                if name in self.context.members(position)
            )
        result: set[OID] = set()
        for _key, record in self._tree.range_scan(
            self.context.key_of_value(low), self.context.key_of_value(high)
        ):
            for instantiation in record:  # type: ignore[union-attr]
                for oid in instantiation:
                    if oid.class_name in wanted:
                        result.add(oid)
        return result

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def on_insert(self, instance: ObjectInstance) -> None:
        context = self.context
        position = context.position_of_class(instance.oid.class_name)
        if position is None:
            return
        # The new object has no parents yet: it heads maximal chains.
        chains = self._chains_from(instance, position)
        by_key: dict[object, list[Instantiation]] = {}
        for chain, key in chains:
            by_key.setdefault(key, []).append(chain)
        # Its direct children stop being maximal heads.
        demoted: set[OID] = set()
        if position < context.end:
            attribute = context.attribute_at(position)
            for value in instance.value_list(attribute):
                if isinstance(value, OID) and context.database.contains(value):
                    demoted.add(value)
        for key in sorted(by_key, key=repr):
            record = self._tree.get(key)
            record = dict(record) if record is not None else {}  # type: ignore[arg-type]
            for chain in by_key[key]:
                record[chain] = True
            for instantiation in list(record):
                if instantiation[0] in demoted:
                    del record[instantiation]
            self._tree.upsert(key, record, self._record_size(record))

    def on_delete(self, instance: ObjectInstance) -> None:
        context = self.context
        position = context.position_of_class(instance.oid.class_name)
        if position is None:
            return
        oid = instance.oid
        affected_keys = {key for _, key in self._chains_from(instance, position)}
        for key in sorted(affected_keys, key=repr):
            record = self._tree.get(key)
            if record is None:
                continue
            record = dict(record)  # type: ignore[arg-type]
            removed: list[Instantiation] = []
            for instantiation in list(record):
                if oid in instantiation:
                    del record[instantiation]
                    removed.append(instantiation)
            # Re-insert orphaned maximal suffixes: the element right after
            # the deleted object survives iff it appears in no remaining
            # instantiation of this record.
            surviving = {m for inst in record for m in inst}
            for instantiation in removed:
                index = instantiation.index(oid)
                if index + 1 < len(instantiation):
                    successor = instantiation[index + 1]
                    if successor not in surviving:
                        suffix = instantiation[index + 1 :]
                        record[suffix] = True
                        surviving.update(suffix)
            if record:
                self._tree.update(key, record, self._record_size(record))
            else:
                self._tree.delete(key)

    def remove_key(self, key: object) -> bool:
        """Cross-subpath CMD: drop the whole record for a deleted key oid."""
        if self._tree.contains(key):
            self._tree.delete(key)
            return True
        return False

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        context = self.context
        expected: dict[object, set[Instantiation]] = {}
        for position in range(context.start, context.end + 1):
            for member in context.members(position):
                for instance in context.database.extent(member):
                    if self._has_in_path_parent(instance.oid, position):
                        continue
                    for chain, key in self._chains_from(instance, position):
                        expected.setdefault(key, set()).add(chain)
        actual = {
            key: set(record)  # type: ignore[arg-type]
            for key, record in self._tree.items()
        }
        if expected != actual:
            raise IndexError_(f"PX({context.subpath}): instantiations inconsistent")
