"""The shared value→oids B+-tree component.

Both the simple index (one class) and the inherited index (a class
hierarchy) are a B+-tree mapping attribute values to oid lists; inherited
records additionally group the oids per class (so a per-class retrieval
can skip foreign oids). :class:`ValueIndex` implements that component once
and computes record sizes so oversized records spill into overflow chains
exactly as the cost model assumes.
"""

from __future__ import annotations

from repro.errors import IndexError_
from repro.model.objects import OID
from repro.storage.btree import BPlusTree
from repro.storage.hashdir import HashDirectory
from repro.storage.pager import Pager
from repro.storage.sizes import SizeModel

#: A stored record: class name -> sorted tuple of oids.
Record = dict[str, tuple[OID, ...]]


class ValueIndex:
    """A B+-tree from attribute values to per-class oid lists.

    Parameters
    ----------
    pager, sizes:
        Storage substrate.
    name:
        Identifier for error messages.
    atomic_keys:
        Whether the indexed attribute has an atomic domain.
    classes:
        The classes whose objects may appear in records.
    grouped:
        ``True`` for inherited indexes: records carry a per-class
        directory (entry overhead per class present in the record).
    layout:
        ``"btree"`` (default) or ``"hash"`` — the hash layout swaps the
        B+-tree for a :class:`~repro.storage.hashdir.HashDirectory` and
        loses range-predicate support.
    """

    def __init__(
        self,
        pager: Pager,
        sizes: SizeModel,
        name: str,
        atomic_keys: bool,
        classes: list[str],
        grouped: bool = False,
        layout: str = "btree",
    ) -> None:
        self._sizes = sizes
        self._name = name
        self._classes = set(classes)
        self._grouped = grouped
        self._key_size = sizes.key_size(atomic=atomic_keys)
        if layout == "hash":
            self.tree: BPlusTree | HashDirectory = HashDirectory(
                pager, sizes, atomic_keys=atomic_keys, name=name
            )
        else:
            self.tree = BPlusTree(pager, sizes, atomic_keys=atomic_keys, name=name)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def record_size(self, record: Record) -> int:
        """Byte size of a record image."""
        size = self._sizes.record_header_size + self._key_size
        if self._grouped:
            size += self._sizes.class_directory_entry_size * len(record)
        size += sum(len(oids) for oids in record.values()) * self._sizes.oid_size
        return size

    @property
    def classes(self) -> set[str]:
        """The classes this index covers."""
        return set(self._classes)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def add(self, value: object, oid: OID) -> None:
        """Add one oid under a value (one counted descent plus a write)."""
        self._check_class(oid)
        existing = self.tree.get(value)
        if existing is None:
            record: Record = {oid.class_name: (oid,)}
            self.tree.insert(value, record, self.record_size(record))
            return
        record = dict(existing)  # type: ignore[arg-type]
        oids = record.get(oid.class_name, ())
        if oid in oids:
            raise IndexError_(f"{self._name}: duplicate entry {oid} under {value!r}")
        record[oid.class_name] = tuple(sorted((*oids, oid)))
        self.tree.update(value, record, self.record_size(record))

    def remove(self, value: object, oid: OID) -> None:
        """Remove one oid from under a value; drop emptied records."""
        self._check_class(oid)
        existing = self.tree.get(value)
        if existing is None or oid not in existing.get(oid.class_name, ()):  # type: ignore[union-attr]
            raise IndexError_(f"{self._name}: {oid} not present under {value!r}")
        record = dict(existing)  # type: ignore[arg-type]
        remaining = tuple(o for o in record[oid.class_name] if o != oid)
        if remaining:
            record[oid.class_name] = remaining
        else:
            del record[oid.class_name]
        if record:
            self.tree.update(value, record, self.record_size(record))
        else:
            self.tree.delete(value)

    def lookup(self, value: object, classes: set[str] | None = None) -> set[OID]:
        """Counted retrieval of the oids under a value.

        ``classes`` filters the result; for grouped records only the pages
        of the requested classes are charged when the record is oversized
        (the class directory provides the offsets).
        """
        partial = self._partial_pages(value, classes)
        record = self.tree.search(value, partial_pages=partial)
        if record is None:
            return set()
        result: set[OID] = set()
        for class_name, oids in record.items():  # type: ignore[union-attr]
            if classes is None or class_name in classes:
                result.update(oids)
        return result

    def range_lookup(
        self, low: object, high: object, classes: set[str] | None = None
    ) -> set[OID]:
        """Counted retrieval of all oids under keys in ``[low, high]``.

        Walks the chained leaves (the organization the paper prescribes
        for range predicates).
        """
        result: set[OID] = set()
        for _key, record in self.tree.range_scan(low, high):
            for class_name, oids in record.items():  # type: ignore[union-attr]
                if classes is None or class_name in classes:
                    result.update(oids)
        return result

    def _partial_pages(
        self, value: object, classes: set[str] | None
    ) -> int | None:
        if classes is None or not self._grouped:
            return None
        record = self.tree.get(value)
        if record is None:
            return None
        full = self.record_size(record)  # type: ignore[arg-type]
        if full <= self._sizes.page_size:
            return None
        share = self._sizes.record_header_size + self._key_size
        share += self._sizes.class_directory_entry_size * len(record)  # type: ignore[arg-type]
        for class_name, oids in record.items():  # type: ignore[union-attr]
            if class_name in classes:
                share += len(oids) * self._sizes.oid_size
        import math

        return max(1, math.ceil(share / self._sizes.page_size))

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def entries(self) -> dict[object, dict[str, tuple[OID, ...]]]:
        """Uncounted snapshot of the whole index."""
        return {key: dict(value) for key, value in self.tree.items()}  # type: ignore[arg-type]

    def _check_class(self, oid: OID) -> None:
        if oid.class_name not in self._classes:
            raise IndexError_(
                f"{self._name}: class {oid.class_name!r} not covered "
                f"(covers {sorted(self._classes)})"
            )
