"""Operational index organizations over the storage simulator.

These are *working* index structures — not cost formulas — implementing
the five organizations of Section 2.2 on top of
:class:`~repro.storage.btree.BPlusTree`, with every page access counted by
the shared :class:`~repro.storage.pager.Pager`:

* :class:`~repro.indexes.simple.SimpleIndex` (SIX) — one class, one
  attribute;
* :class:`~repro.indexes.inherited.InheritedIndex` (IIX) — an attribute of
  a whole class hierarchy;
* :class:`~repro.indexes.multi.MultiIndex` (MX) — a SIX on every class in
  the scope of a subpath;
* :class:`~repro.indexes.multi_inherited.MultiInheritedIndex` (MIX) — an
  IIX per class level;
* :class:`~repro.indexes.nested_inherited.NestedInheritedIndex` (NIX) —
  primary + auxiliary index with the paper's full insertion/deletion
  algorithms (numchild counters, parent-list propagation).

:class:`~repro.indexes.manager.ConfigurationIndexSet` materializes a
complete :class:`~repro.core.configuration.IndexConfiguration` and
:class:`~repro.indexes.executor.PathQueryExecutor` runs path queries and
updates through it, returning measured page-access counts.
"""

from repro.indexes.base import IndexContext, OperationalIndex
from repro.indexes.executor import PathQueryExecutor
from repro.indexes.inherited import InheritedIndex
from repro.indexes.manager import ConfigurationIndexSet
from repro.indexes.multi import MultiIndex
from repro.indexes.multi_inherited import MultiInheritedIndex
from repro.indexes.nested_inherited import NestedInheritedIndex
from repro.indexes.simple import SimpleIndex

__all__ = [
    "ConfigurationIndexSet",
    "IndexContext",
    "InheritedIndex",
    "MultiIndex",
    "MultiInheritedIndex",
    "NestedInheritedIndex",
    "OperationalIndex",
    "PathQueryExecutor",
    "SimpleIndex",
]
