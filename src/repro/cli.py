"""Command-line interface.

::

    python -m repro advise  SPEC.json [--trace] [--json] [--noindex]
                            [--strategy NAME] [--beam-width N]
    python -m repro matrix  SPEC.json
    python -m repro multipath SPEC.json [SPEC2.json ...] [--beam-width N]
                            [--budget-pages P] [--restarts N] [--noindex]
                            [--json]
    python -m repro whatif  SPEC.json [--steps STEPS.json]
                            [--perturb CLASS:COMP*F | CLASS:COMP=V ...]
                            [--strategy NAME] [--json]
    python -m repro trace   SPEC.json --regime NAME --events N [--seed S]
                            [--out FILE]
    python -m repro replay  SPEC.json --trace FILE --window N [--slide N]
                            [--threshold X] [--hysteresis K] [--track-stats]
                            [--rate-scale S] [--strategy NAME] [--json]
    python -m repro example                # print a template spec
    python -m repro paper   [--trace]      # reproduce Example 5.1
    python -m repro measure [--check] [--threshold X] [--report FILE]
                            [--layout btree|hash] [--json]
    python -m repro measure --scenario NAME [--trace FILE]
                            [--regime NAME --events N] [--seed S] [--json]

``SPEC.json`` is the advisor-spec document described in :mod:`repro.io`;
``multipath`` takes one spec per path and selects their configurations
jointly (shared physical indexes are maintained and stored once);
``whatif`` drives an incremental :class:`~repro.whatif.AdvisorSession`
through a perturbation sequence and reports per-step cost and
configuration changes; ``trace`` generates a seeded synthetic operation
stream (JSONL) for the spec's path, and ``replay`` feeds such a stream
through a windowed, drift-detected
:class:`~repro.trace.ContinuousAdvisor` and prints the re-advise
timeline. ``measure`` is the ground-truth side: it runs the
:mod:`repro.backend` calibration suite (with ``--check`` as the CI
accuracy guard) or, with ``--scenario``, replays a trace against real
page structures and prints measured I/O beside the analytic predictions.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.advisor import DEFAULT_STRATEGY, advise
from repro.core.cost_matrix import KERNELS, CostMatrix
from repro.core.multipath import (
    DEFAULT_RESTARTS,
    PathWorkload,
    optimize_multipath,
    validate_selection_options,
)
from repro.errors import ReproError
from repro.io import load_spec, spec_to_dict
from repro.obs import Recorder, stats_table, write_profile
from repro.organizations import CONFIGURABLE_ORGANIZATIONS
from repro.reporting.tables import multipath_table, replay_table, whatif_table
from repro.search import available_strategies
from repro.trace import (
    TRACE_REGIMES,
    ContinuousAdvisor,
    TraceReadReport,
    generate_trace,
    iter_trace,
    write_trace,
)
from repro.whatif import (
    DEFAULT_SESSION_STRATEGY,
    AdvisorSession,
    Perturbation,
    parse_steps,
)


def _recorder_for(arguments: argparse.Namespace) -> Recorder | None:
    """A live :class:`~repro.obs.Recorder` when profiling was requested.

    ``None`` (no ``--profile`` and no ``--stats``) keeps every
    instrumented call on the zero-overhead null-recorder path.
    """
    if getattr(arguments, "profile", None) or getattr(
        arguments, "stats", False
    ):
        return Recorder()
    return None


def _finish_profile(
    recorder: Recorder | None, arguments: argparse.Namespace
) -> None:
    """Write/print the requested profile outputs after a command ran."""
    if recorder is None:
        return
    if getattr(arguments, "stats", False):
        print()
        print(stats_table(recorder))
    profile = getattr(arguments, "profile", None)
    if profile:
        write_profile(
            recorder,
            profile,
            meta={"command": arguments.command},
        )
        print(f"profile written to {profile}", file=sys.stderr)


def _cmd_advise(arguments: argparse.Namespace) -> int:
    spec = load_spec(arguments.spec)
    strategy_options = {}
    if arguments.beam_width is not None:
        if arguments.strategy != "greedy_beam":
            print(
                "error: --beam-width requires --strategy greedy_beam",
                file=sys.stderr,
            )
            return 1
        strategy_options["width"] = arguments.beam_width
    recorder = _recorder_for(arguments)
    report = advise(
        spec.stats,
        spec.load,
        organizations=spec.organizations or CONFIGURABLE_ORGANIZATIONS,
        include_noindex=spec.include_noindex or arguments.noindex,
        keep_trace=arguments.trace,
        range_selectivity=spec.range_selectivity,
        strategy=arguments.strategy,
        workers=arguments.workers,
        kernel=arguments.kernel,
        recorder=recorder,
        **strategy_options,
    )
    if arguments.json:
        path = spec.stats.path
        payload = {
            "path": str(path),
            "strategy": report.optimal.strategy,
            "optimal": {
                "configuration": [
                    {
                        "subpath": str(path.subpath(a.start, a.end)),
                        "start": a.start,
                        "end": a.end,
                        "organization": str(a.organization),
                    }
                    for a in report.optimal.configuration.assignments
                ],
                "cost": report.optimal.cost,
                "evaluated": report.optimal.evaluated,
                "pruned": report.optimal.pruned,
            },
            "single_index_costs": {
                str(org): cost for org, cost in report.single_index_costs.items()
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
        if arguments.trace:
            print()
            for line in report.optimal.trace:
                print("  " + line)
    _finish_profile(recorder, arguments)
    return 0


def _cmd_matrix(arguments: argparse.Namespace) -> int:
    spec = load_spec(arguments.spec)
    matrix = CostMatrix.compute(
        spec.stats,
        spec.load,
        organizations=spec.organizations or CONFIGURABLE_ORGANIZATIONS,
        include_noindex=spec.include_noindex,
        range_selectivity=spec.range_selectivity,
        workers=arguments.workers,
        kernel=arguments.kernel,
    )
    print(matrix.render(spec.stats.path))
    return 0


def _cmd_multipath(arguments: argparse.Namespace) -> int:
    # Fail on bad flags before the expensive matrix computations.
    validate_selection_options(
        arguments.per_row_organizations,
        arguments.beam_width,
        arguments.budget_pages,
        arguments.restarts,
    )
    specs = [load_spec(spec_path) for spec_path in arguments.specs]
    workloads = [PathWorkload(stats=spec.stats, load=spec.load) for spec in specs]
    # Each matrix honours its own spec's options; --noindex forces the
    # zero-storage fallback on every path through the same
    # include_noindex seam as advise/matrix (note compute's semantics: a
    # restricted organization list that already contains NONE is kept,
    # one without NONE is widened to the full extended set), which keeps
    # tight --budget-pages runs feasible.
    recorder = _recorder_for(arguments)
    matrices = [
        CostMatrix.compute(
            spec.stats,
            spec.load,
            organizations=spec.organizations or CONFIGURABLE_ORGANIZATIONS,
            include_noindex=arguments.noindex or spec.include_noindex,
            range_selectivity=spec.range_selectivity,
            workers=arguments.workers,
            kernel=arguments.kernel,
            recorder=recorder,
        )
        for spec in specs
    ]
    result = optimize_multipath(
        workloads,
        per_row_organizations=arguments.per_row_organizations,
        matrices=matrices,
        beam_width=arguments.beam_width,
        budget_pages=arguments.budget_pages,
        restarts=arguments.restarts,
        recorder=recorder,
    )
    paths = [spec.stats.path for spec in specs]
    if arguments.json:
        payload = {
            "paths": [
                {
                    "path": str(path),
                    "configuration": [
                        {
                            "subpath": str(path.subpath(a.start, a.end)),
                            "start": a.start,
                            "end": a.end,
                            "organization": str(a.organization),
                        }
                        for a in result.configurations[index].assignments
                    ],
                }
                for index, path in enumerate(paths)
            ],
            "total_cost": result.total_cost,
            "independent_cost": result.independent_cost,
            "shared_savings": result.shared_savings,
            "storage_pages": result.storage_pages,
            "budget_pages": result.budget_pages,
            "unconstrained_cost": result.unconstrained_cost,
            "exact": result.exact,
        }
        print(json.dumps(payload, indent=2))
    else:
        # The table already carries the per-path configurations and the
        # joint/independent/savings/storage/budget summary.
        print(multipath_table(paths, result))
    _finish_profile(recorder, arguments)
    return 0


def _cmd_whatif(arguments: argparse.Namespace) -> int:
    spec = load_spec(arguments.spec)
    perturbations: list[Perturbation] = []
    if arguments.steps:
        with open(arguments.steps, "r", encoding="utf-8") as handle:
            try:
                document = json.load(handle)
            except json.JSONDecodeError as error:
                print(
                    f"error: invalid JSON in {arguments.steps}: {error}",
                    file=sys.stderr,
                )
                return 1
        perturbations.extend(parse_steps(document))
    perturbations.extend(
        Perturbation.parse(text) for text in arguments.perturb
    )
    if not perturbations:
        print(
            "error: no perturbations given (use --steps FILE and/or "
            "--perturb CLASS:COMPONENT*FACTOR)",
            file=sys.stderr,
        )
        return 1
    recorder = _recorder_for(arguments)
    session = AdvisorSession(
        spec.stats,
        spec.load,
        organizations=spec.organizations or CONFIGURABLE_ORGANIZATIONS,
        include_noindex=spec.include_noindex or arguments.noindex,
        range_selectivity=spec.range_selectivity,
        strategy=arguments.strategy,
        workers=arguments.workers,
        kernel=arguments.kernel,
        recorder=recorder,
    )
    steps = session.run(perturbations)
    path = spec.stats.path
    if arguments.json:
        payload = {
            "path": str(path),
            "strategy": arguments.strategy,
            "steps": [
                {
                    "step": step.index,
                    "perturbation": step.description,
                    "mode": step.report.mode if step.report else None,
                    "rows_recomputed": (
                        len(step.report.recomputed_rows) if step.report else None
                    ),
                    "rows_patched": (
                        len(step.report.patched_rows) if step.report else None
                    ),
                    "kernel_slice_rows": (
                        step.report.kernel_slice_rows if step.report else None
                    ),
                    "kernel_fallback_reason": (
                        step.report.kernel_fallback_reason
                        if step.report
                        else None
                    ),
                    "cost": step.cost,
                    "configuration_changed": step.configuration_changed,
                    "configuration": [
                        {
                            "subpath": str(path.subpath(a.start, a.end)),
                            "start": a.start,
                            "end": a.end,
                            "organization": str(a.organization),
                        }
                        for a in step.result.configuration.assignments
                    ],
                }
                for step in steps
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(whatif_table(path, steps, title=f"what-if over {path}"))
        changes = sum(1 for step in steps if step.configuration_changed)
        print(
            f"\n{len(steps) - 1} steps, {changes} configuration changes, "
            f"final cost {steps[-1].cost:.2f}"
        )
        fallbacks = {
            step.report.kernel_fallback_reason
            for step in steps
            if step.report is not None
            and step.report.kernel_fallback_reason is not None
        }
        if fallbacks:
            print(
                "kernel fallbacks: " + ", ".join(sorted(fallbacks))
            )
    _finish_profile(recorder, arguments)
    return 0


def _cmd_trace(arguments: argparse.Namespace) -> int:
    spec = load_spec(arguments.spec)
    events = generate_trace(
        spec.stats.path,
        arguments.regime,
        arguments.events,
        seed=arguments.seed,
        edge_share=arguments.edge_share,
    )
    if arguments.out:
        count = write_trace(events, arguments.out)
        print(f"{count} events ({arguments.regime}) written to {arguments.out}")
    else:
        for event in events:
            print(json.dumps(event.to_dict(), separators=(",", ":")))
    return 0


def _cmd_replay(arguments: argparse.Namespace) -> int:
    spec = load_spec(arguments.spec)
    threshold: float | str = arguments.threshold
    if threshold != "auto":
        try:
            threshold = float(threshold)
        except ValueError:
            print(
                f"error: --threshold must be a number or 'auto', "
                f"got {arguments.threshold!r}",
                file=sys.stderr,
            )
            return 1
    window = arguments.window
    if window is None and arguments.window_seconds is None:
        window = 200
    recorder = _recorder_for(arguments)
    session_options = dict(
        organizations=spec.organizations or CONFIGURABLE_ORGANIZATIONS,
        include_noindex=spec.include_noindex or arguments.noindex,
        range_selectivity=spec.range_selectivity,
        strategy=arguments.strategy,
        workers=arguments.workers,
        kernel=arguments.kernel,
        recorder=recorder,
    )
    if arguments.resume:
        if not arguments.checkpoint:
            print(
                "error: --resume requires --checkpoint FILE",
                file=sys.stderr,
            )
            return 1
        from repro.resilience import restore_advisor

        advisor = restore_advisor(
            arguments.checkpoint, spec.stats, spec.load, **session_options
        )
    else:
        advisor = ContinuousAdvisor(
            spec.stats,
            spec.load,
            window=window,
            slide=arguments.slide,
            window_seconds=arguments.window_seconds,
            slide_seconds=arguments.slide_seconds,
            rate_scale=arguments.rate_scale,
            track_statistics=arguments.track_stats,
            threshold=threshold,
            hysteresis=arguments.hysteresis,
            deadline_ms=arguments.deadline_ms,
            **session_options,
        )
    read_report = TraceReadReport()
    steps = advisor.replay(
        iter_trace(
            arguments.trace,
            on_error=arguments.on_error,
            report=read_report,
        )
    )
    if arguments.checkpoint:
        from repro.resilience import save_advisor

        save_advisor(advisor, arguments.checkpoint)
    path = spec.stats.path
    if arguments.json:
        payload = {
            "path": str(path),
            "strategy": arguments.strategy,
            "window": window,
            "window_seconds": arguments.window_seconds,
            "window_mode": advisor.aggregator.mode,
            "events": advisor.events_seen,
            "windows": advisor.windows_seen,
            "windows_held": advisor.windows_held,
            "lines_skipped": read_report.skipped_lines,
            "skip_messages": [
                message
                for _number, message in read_report.skipped
                if message
            ],
            "degradations": advisor.degradation.to_dicts(),
            "steps": [
                {
                    "step": step.index,
                    "window": step.window,
                    "forced": step.forced,
                    "rung": step.rung,
                    "events_seen": step.events_seen,
                    "change": step.change,
                    "perturbations": step.perturbations,
                    "mode": step.report.mode if step.report else None,
                    "rows_recomputed": (
                        len(step.report.recomputed_rows) if step.report else None
                    ),
                    "rows_patched": (
                        len(step.report.patched_rows) if step.report else None
                    ),
                    "cost": step.cost,
                    "configuration_changed": step.configuration_changed,
                    "configuration": [
                        {
                            "subpath": str(path.subpath(a.start, a.end)),
                            "start": a.start,
                            "end": a.end,
                            "organization": str(a.organization),
                        }
                        for a in step.result.configuration.assignments
                    ],
                }
                for step in steps
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(replay_table(path, steps, title=f"trace replay over {path}"))
        print(f"\n{advisor.describe()}")
        if read_report.skipped:
            print(f"trace read: {read_report.describe()}")
        if advisor.degradation:
            print("degradations:")
            for line in advisor.degradation.describe().splitlines():
                print(f"  {line}")
    _finish_profile(recorder, arguments)
    return 0


def _cmd_example(arguments: argparse.Namespace) -> int:
    from repro.paper import figure7_load, figure7_statistics

    document = spec_to_dict(figure7_statistics(), figure7_load())
    print(json.dumps(document, indent=2))
    return 0


def _cmd_paper(arguments: argparse.Namespace) -> int:
    from repro.paper import figure7_load, figure7_statistics

    report = advise(
        figure7_statistics(), figure7_load(), keep_trace=arguments.trace
    )
    print(report.render())
    if arguments.trace:
        print()
        for line in report.optimal.trace:
            print("  " + line)
    return 0


def _cmd_measure(arguments: argparse.Namespace) -> int:
    # Imported lazily: the backend pulls in the operational structures,
    # which the purely analytic subcommands never need.
    from repro.backend import (
        default_scenarios,
        render_backend_replay,
        render_calibration,
        replay_trace,
        run_calibration,
    )
    from repro.trace import read_trace

    if arguments.scenario:
        scenarios = {s.name: s for s in default_scenarios()}
        if arguments.scenario not in scenarios:
            print(
                "error: unknown scenario "
                f"{arguments.scenario!r}; available: "
                + ", ".join(sorted(scenarios)),
                file=sys.stderr,
            )
            return 1
        scenario = scenarios[arguments.scenario]
        database, path, stats, configuration = scenario.build()
        if arguments.trace:
            events = read_trace(arguments.trace)
        else:
            events = generate_trace(
                path, arguments.regime, arguments.events, seed=arguments.seed
            )
        recorder = _recorder_for(arguments)
        report = replay_trace(
            database,
            path,
            configuration,
            events,
            seed=arguments.seed,
            stats=stats,
            layout=arguments.layout or "btree",
            recorder=recorder,
        )
        if arguments.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(render_backend_replay(report))
        _finish_profile(recorder, arguments)
        return 0

    # Without --layout every layout is calibrated and guarded on its
    # own: a single aggregate fit hides a layout sitting just under the
    # threshold behind a tighter one (the hash fit's 0.145 is invisible
    # next to the btree fit's 0.06).
    layouts = (arguments.layout,) if arguments.layout else ("btree", "hash")
    reports = {layout: run_calibration(layout=layout) for layout in layouts}
    if len(reports) == 1:
        payload = next(iter(reports.values())).to_json()
    else:
        payload = json.dumps(
            {layout: report.to_dict() for layout, report in reports.items()},
            indent=2,
            sort_keys=True,
        )
    if arguments.report:
        import pathlib

        pathlib.Path(arguments.report).write_text(payload + "\n")
    if arguments.json:
        print(payload)
    else:
        for layout, report in reports.items():
            if len(reports) > 1:
                print(f"== layout: {layout} ==")
            print(render_calibration(report))
    if arguments.check:
        failed = False
        for layout, report in reports.items():
            failures = report.check(arguments.threshold)
            for failure in failures:
                print(f"FAIL [{layout}]: {failure}", file=sys.stderr)
            if failures:
                failed = True
                continue
            print(
                f"accuracy guard passed [{layout}]: max relative error "
                f"{report.max_relative_error:.3f} <= "
                f"{arguments.threshold:.3f}"
            )
        if failed:
            return 1
    # The calibration path records nothing yet; an explicitly requested
    # profile is still honored (as an empty document) rather than
    # silently dropped.
    _finish_profile(_recorder_for(arguments), arguments)
    return 0


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the cost-matrix construction: "
            "0 forces serial, omit for auto (parallel on long paths)"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=KERNELS,
        default="auto",
        help=(
            "cost-matrix evaluation engine: columnar (numpy, batched), "
            "legacy (scalar rows), or auto (columnar when numpy is "
            "available); every kernel builds bit-identical matrices"
        ),
    )


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        metavar="FILE",
        default=None,
        help=(
            "record tracing spans and metrics for the whole run and "
            "write a Chrome trace-event JSON profile (open in Perfetto "
            "or chrome://tracing) to FILE"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print the recorded span timings and metric counters as an "
            "ASCII table after the command output"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Optimal index configuration selection for OO databases "
            "(Choenni, Bertino, Blanken & Chang, ICDE 1994)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    advise_parser = commands.add_parser(
        "advise", help="select the optimal configuration for a spec"
    )
    advise_parser.add_argument("spec", help="advisor spec JSON file")
    advise_parser.add_argument(
        "--trace", action="store_true", help="show branch-and-bound decisions"
    )
    advise_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    advise_parser.add_argument(
        "--noindex",
        action="store_true",
        help="also consider leaving subpaths unindexed",
    )
    advise_parser.add_argument(
        "--strategy",
        choices=available_strategies(),
        default=DEFAULT_STRATEGY,
        help="search strategy (default: the paper's branch and bound)",
    )
    advise_parser.add_argument(
        "--beam-width",
        type=int,
        default=None,
        metavar="N",
        help="beam width (only valid with --strategy greedy_beam)",
    )
    _add_workers_argument(advise_parser)
    _add_profile_argument(advise_parser)
    advise_parser.set_defaults(handler=_cmd_advise)

    matrix_parser = commands.add_parser(
        "matrix", help="print the subpath x organization cost matrix"
    )
    matrix_parser.add_argument("spec", help="advisor spec JSON file")
    _add_workers_argument(matrix_parser)
    matrix_parser.set_defaults(handler=_cmd_matrix)

    multipath_parser = commands.add_parser(
        "multipath",
        help="jointly select configurations for several paths (one spec each)",
    )
    multipath_parser.add_argument(
        "specs", nargs="+", help="advisor spec JSON files, one per path"
    )
    multipath_parser.add_argument(
        "--beam-width",
        type=int,
        default=None,
        metavar="N",
        help=(
            "candidates kept per path by the k-best beam generator "
            "(default: exact enumeration for short paths, a width-16 beam "
            "beyond)"
        ),
    )
    multipath_parser.add_argument(
        "--budget-pages",
        type=float,
        default=None,
        metavar="P",
        help=(
            "storage budget in pages for the union of selected physical "
            "indexes (shared indexes stored once); omit for unconstrained"
        ),
    )
    multipath_parser.add_argument(
        "--per-row-organizations",
        type=int,
        default=2,
        metavar="R",
        help=(
            "best organizations considered per subpath (default 2); "
            "ignored with --budget-pages, which always considers every "
            "organization because the budget couples the choices"
        ),
    )
    multipath_parser.add_argument(
        "--noindex",
        action="store_true",
        help=(
            "include the NONE organization on every path (keeps tight "
            "--budget-pages runs feasible)"
        ),
    )
    multipath_parser.add_argument(
        "--restarts",
        type=int,
        default=DEFAULT_RESTARTS,
        metavar="N",
        help=(
            "seeded randomized restarts of the joint coordinate descent "
            "beyond the exact cross-product limit (default "
            f"{DEFAULT_RESTARTS}; 0 disables)"
        ),
    )
    multipath_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    _add_workers_argument(multipath_parser)
    _add_profile_argument(multipath_parser)
    multipath_parser.set_defaults(handler=_cmd_multipath)

    whatif_parser = commands.add_parser(
        "whatif",
        help=(
            "drive an incremental what-if session through a perturbation "
            "sequence"
        ),
    )
    whatif_parser.add_argument("spec", help="advisor spec JSON file")
    whatif_parser.add_argument(
        "--steps",
        metavar="FILE",
        help=(
            "JSON perturbation sequence: a list of steps (or {\"steps\": "
            "[...]}), each {\"class\": C, \"component\": query|insert|"
            "delete|objects|distinct|fanout, \"scale\"|\"set\": X}"
        ),
    )
    whatif_parser.add_argument(
        "--perturb",
        action="append",
        default=[],
        metavar="CLASS:COMP*F|=V",
        help=(
            "one perturbation step in flag form, e.g. Division:delete*2 "
            "or Division:query=0.4 (repeatable; applied after --steps)"
        ),
    )
    whatif_parser.add_argument(
        "--strategy",
        choices=available_strategies(),
        default=DEFAULT_SESSION_STRATEGY,
        help=(
            "search strategy for every step (default: the incremental "
            "dynamic program, which consumes per-step dirty-row sets)"
        ),
    )
    whatif_parser.add_argument(
        "--noindex",
        action="store_true",
        help="also consider leaving subpaths unindexed",
    )
    whatif_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    _add_workers_argument(whatif_parser)
    _add_profile_argument(whatif_parser)
    whatif_parser.set_defaults(handler=_cmd_whatif)

    trace_parser = commands.add_parser(
        "trace",
        help="generate a seeded synthetic operation trace (JSONL) for a spec",
    )
    trace_parser.add_argument("spec", help="advisor spec JSON file")
    trace_parser.add_argument(
        "--regime",
        choices=TRACE_REGIMES,
        default="edge_drift",
        help="drift regime of the generated stream (default: edge_drift)",
    )
    trace_parser.add_argument(
        "--events",
        type=int,
        default=5000,
        metavar="N",
        help="number of events to generate (default 5000)",
    )
    trace_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="PRNG seed; identical inputs reproduce identical traces",
    )
    trace_parser.add_argument(
        "--edge-share",
        type=float,
        default=0.8,
        metavar="F",
        help=(
            "edge_drift only: fraction of event mass on the last two "
            "path positions (default 0.8)"
        ),
    )
    trace_parser.add_argument(
        "--out",
        metavar="FILE",
        help="write the JSONL trace here (default: stdout)",
    )
    trace_parser.set_defaults(handler=_cmd_trace)

    replay_parser = commands.add_parser(
        "replay",
        help=(
            "replay an operation trace through a windowed, drift-detected "
            "continuous advisor"
        ),
    )
    replay_parser.add_argument("spec", help="advisor spec JSON file")
    replay_parser.add_argument(
        "--trace",
        required=True,
        metavar="FILE",
        help="JSONL operation trace (see the 'trace' subcommand)",
    )
    replay_parser.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help=(
            "events per aggregation window (default 200 unless "
            "--window-seconds selects pure wall-clock windows)"
        ),
    )
    replay_parser.add_argument(
        "--slide",
        type=int,
        default=None,
        metavar="N",
        help=(
            "events between window snapshots (default: the window size, "
            "i.e. tumbling windows; smaller values slide)"
        ),
    )
    replay_parser.add_argument(
        "--window-seconds",
        type=float,
        default=None,
        metavar="T",
        help=(
            "wall-clock window span in trace-timestamp seconds: alone, "
            "windows are pure wall-clock; with --window, events older "
            "than T are evicted from the count window (hybrid)"
        ),
    )
    replay_parser.add_argument(
        "--slide-seconds",
        type=float,
        default=None,
        metavar="T",
        help=(
            "timestamp progress between wall-clock snapshots (default: "
            "the window span, i.e. tumbling; wall-clock mode only)"
        ),
    )
    replay_parser.add_argument(
        "--threshold",
        default="0.2",
        metavar="X",
        help=(
            "relative workload change that counts as drift (default "
            "0.2), or 'auto' to scale with window sampling noise "
            "(~1/sqrt(window))"
        ),
    )
    replay_parser.add_argument(
        "--hysteresis",
        type=int,
        default=2,
        metavar="K",
        help=(
            "consecutive drifting windows required before a re-advise "
            "(default 2)"
        ),
    )
    replay_parser.add_argument(
        "--rate-scale",
        type=float,
        default=1.0,
        metavar="S",
        help="multiplier from per-event window shares to load frequencies",
    )
    replay_parser.add_argument(
        "--track-stats",
        action="store_true",
        help=(
            "fold the cumulative insert/delete balance into the class "
            "statistics (objects drift with the stream)"
        ),
    )
    replay_parser.add_argument(
        "--strategy",
        choices=available_strategies(),
        default=DEFAULT_SESSION_STRATEGY,
        help=(
            "search strategy for every re-advise (default: the "
            "incremental dynamic program)"
        ),
    )
    replay_parser.add_argument(
        "--noindex",
        action="store_true",
        help="also consider leaving subpaths unindexed",
    )
    replay_parser.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help=(
            "write a resumable snapshot of the advisor here after the "
            "replay (and read it first with --resume)"
        ),
    )
    replay_parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "restore the advisor from --checkpoint and continue the "
            "stream from where it left off (bit-identical to an "
            "uninterrupted run); windowing/drift flags come from the "
            "checkpoint"
        ),
    )
    replay_parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="T",
        help=(
            "wall-clock budget per re-advise in milliseconds; on expiry "
            "the advisor degrades (shrinking greedy beams, then the "
            "last-known-good configuration) instead of blocking — each "
            "step reports the rung that answered"
        ),
    )
    replay_parser.add_argument(
        "--on-error",
        choices=("raise", "skip", "collect"),
        default="raise",
        help=(
            "malformed trace lines: 'raise' aborts (default), 'skip' "
            "drops them, 'collect' drops them and reports each parse "
            "error; skipped line numbers are always reported"
        ),
    )
    replay_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    _add_workers_argument(replay_parser)
    _add_profile_argument(replay_parser)
    replay_parser.set_defaults(handler=_cmd_replay)

    example_parser = commands.add_parser(
        "example", help="print a template spec (the paper's Figure 7)"
    )
    example_parser.set_defaults(handler=_cmd_example)

    paper_parser = commands.add_parser(
        "paper", help="reproduce the paper's Example 5.1"
    )
    paper_parser.add_argument("--trace", action="store_true")
    paper_parser.set_defaults(handler=_cmd_paper)

    measure_parser = commands.add_parser(
        "measure",
        help=(
            "ground truth: materialize configurations as real page "
            "structures, measure I/O, calibrate the cost model"
        ),
    )
    measure_parser.add_argument(
        "--layout",
        choices=("btree", "hash"),
        default=None,
        help=(
            "storage layout for the materialized structures; omit to "
            "calibrate (and --check) every layout separately"
        ),
    )
    measure_parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "fail (exit 1) when any scenario's post-fit relative error "
            "exceeds --threshold — the CI accuracy guard"
        ),
    )
    measure_parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        metavar="X",
        help="relative-error bound for --check (default 0.15)",
    )
    measure_parser.add_argument(
        "--report",
        metavar="FILE",
        default=None,
        help="write the calibration report (JSON) here",
    )
    measure_parser.add_argument(
        "--scenario",
        metavar="NAME",
        default=None,
        help=(
            "replay a trace against this seeded scenario instead of "
            "running the calibration suite"
        ),
    )
    measure_parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="JSONL trace to replay (with --scenario); generated if omitted",
    )
    measure_parser.add_argument(
        "--regime",
        choices=TRACE_REGIMES,
        default="stationary",
        help="regime for the generated trace (without --trace)",
    )
    measure_parser.add_argument(
        "--events",
        type=int,
        default=200,
        metavar="N",
        help="events to generate (without --trace)",
    )
    measure_parser.add_argument(
        "--seed", type=int, default=0, help="replay / generation seed"
    )
    measure_parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    _add_profile_argument(measure_parser)
    measure_parser.set_defaults(handler=_cmd_measure)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like a good
        # Unix citizen.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
