"""Everything from the paper's figures, in one importable place.

* Figure 1 / Figure 2 — the Vehicle schema and instances
  (re-exported from :mod:`repro.model.examples`);
* Figure 6 — the hypothetical cost matrix for ``C1.A1.A2.A3.A4`` used in
  the branch-and-bound walkthrough;
* Figure 7 — the database and workload characteristics for
  ``P_exa = Per.owns.man.divs.name``;
* Example 5.1 expectations — the paper's reported results, as constants
  the benchmarks compare against.

Figure 6 note: the scan shows only three rows of the hypothetical matrix
(``C1.A1: 3 4 6``, ``C2.A2: 4 4 4``, ``C3.A3: 2 3 4``); the remaining rows
are reconstructed from the row minima that the prose walkthrough quotes
(S1,2=6 MIX, S1,3=8 MIX, S1,4=9 NIX, S2,3=5, S2,4=5 NIX, S3,4=6 NIX,
S4,4=4 MX). Non-minimal entries of those rows are free parameters; the
values below are chosen so every prose step reproduces exactly.
"""

from __future__ import annotations

from repro.core.cost_matrix import CostMatrix
from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.model.examples import (
    PE_EXPRESSION,
    PEXA_EXPRESSION,
    build_vehicle_schema,
    pe_path,
    pexa_path,
    populate_vehicle_database,
)
from repro.model.path import Path
from repro.organizations import IndexOrganization
from repro.workload.load import LoadDistribution, LoadTriplet

__all__ = [
    "PE_EXPRESSION",
    "PEXA_EXPRESSION",
    "EX51_EXPECTED",
    "FIGURE7_ROWS",
    "build_vehicle_schema",
    "figure6_matrix",
    "figure7_load",
    "figure7_statistics",
    "pe_path",
    "pexa_path",
    "populate_vehicle_database",
]

_MX = IndexOrganization.MX
_MIX = IndexOrganization.MIX
_NIX = IndexOrganization.NIX

#: Figure 7, verbatim: class -> (n, d, nin, (alpha, beta, gamma)).
FIGURE7_ROWS: dict[str, tuple[int, int, float, tuple[float, float, float]]] = {
    "Person": (200_000, 20_000, 1, (0.3, 0.1, 0.1)),
    "Vehicle": (10_000, 5_000, 3, (0.3, 0.0, 0.05)),
    "Bus": (5_000, 2_500, 2, (0.05, 0.05, 0.1)),
    "Truck": (5_000, 2_500, 2, (0.0, 0.1, 0.0)),
    "Company": (1_000, 1_000, 4, (0.1, 0.1, 0.1)),
    "Division": (1_000, 1_000, 1, (0.2, 0.2, 0.1)),
}

#: The results Example 5.1 reports (shape targets for the benchmarks).
EX51_EXPECTED = {
    "optimal_partition": ((1, 2), (3, 4)),  # Per.owns.man | Comp.divs.name
    "optimal_organizations": (_NIX, _MX),
    "optimal_cost": 16.03,
    "whole_path_nix_cost": 42.84,
    "improvement_factor": 2.7,
    "explored": 4,
    "total_configurations": 8,
}


def figure7_statistics(
    config: CostModelConfig | None = None, path: Path | None = None
) -> PathStatistics:
    """The Figure 7 database characteristics as :class:`PathStatistics`."""
    path = path or pexa_path()
    per_class = {
        name: ClassStats(objects=n, distinct=d, fanout=nin)
        for name, (n, d, nin, _load) in FIGURE7_ROWS.items()
    }
    return PathStatistics(path, per_class, config=config)


def figure7_load(path: Path | None = None) -> LoadDistribution:
    """The Figure 7 workload triplets as a :class:`LoadDistribution`."""
    path = path or pexa_path()
    triplets = {
        name: LoadTriplet(query=a, insert=b, delete=g)
        for name, (_n, _d, _nin, (a, b, g)) in FIGURE7_ROWS.items()
    }
    return LoadDistribution(path, triplets)


def figure6_matrix() -> CostMatrix:
    """The Figure 6 hypothetical cost matrix for ``C1.A1.A2.A3.A4``."""
    values = {
        (1, 1): {_MX: 3.0, _MIX: 4.0, _NIX: 6.0},
        (1, 2): {_MX: 7.0, _MIX: 6.0, _NIX: 8.0},
        (1, 3): {_MX: 9.0, _MIX: 8.0, _NIX: 10.0},
        (1, 4): {_MX: 12.0, _MIX: 10.0, _NIX: 9.0},
        (2, 2): {_MX: 4.0, _MIX: 4.0, _NIX: 4.0},
        (2, 3): {_MX: 6.0, _MIX: 5.0, _NIX: 7.0},
        (2, 4): {_MX: 8.0, _MIX: 7.0, _NIX: 5.0},
        (3, 3): {_MX: 2.0, _MIX: 3.0, _NIX: 4.0},
        (3, 4): {_MX: 7.0, _MIX: 8.0, _NIX: 6.0},
        (4, 4): {_MX: 4.0, _MIX: 5.0, _NIX: 5.0},
    }
    return CostMatrix.from_values(4, values)
