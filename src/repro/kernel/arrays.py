"""Columnar lowering of statistics and workload, plus batched primitives.

:class:`StatArrays` flattens a :class:`~repro.costmodel.params.PathStatistics`
and a :class:`~repro.workload.load.LoadDistribution` into contiguous
arrays indexed by a **global member axis**: every hierarchy member of
every position gets one slot ``gm`` (positions ascending, members in
hierarchy order — the exact iteration order of the legacy evaluator).
On top of it sit the row-independent tables every organization shares:
probe-key chains, ``nin-bar`` chains, occupancy counts, extent pages and
the NIX parent-chain recurrences.

:class:`ShapeTable` decomposes a list of
:class:`~repro.costmodel.btree_shape.IndexShape` objects into level
arrays so that :func:`crt_batch` / :func:`cmt_batch` / :func:`crr_batch`
can evaluate the paper's CRT/CMT/CRR primitives for many (shape, t)
pairs at once. Per element the arithmetic replays the scalar primitives
(:mod:`repro.costmodel.primitives`) operation for operation — the level
loop accumulates sequentially, clamps use ``min``/``max`` of the same
operands — so batched results are bit-identical to scalar calls.

:func:`fold_segments` is the kernel's accumulation workhorse: it folds
per-segment term lists **sequentially in rank order** (padding with the
fold identity, which never perturbs float bits), reproducing the legacy
evaluator's left-to-right accumulation chains exactly.

Lowerings persist: :func:`get_stat_arrays` keeps a bounded cache of
:class:`StatArrays` on the statistics object (gated by
``config.cache_evaluation``), and :meth:`StatArrays.patched` derives the
arrays for a drifted workload from an existing lowering by patching only
the load-derived columns — the stats-derived tables, including the
per-organization probe/insert tables that accumulate in ``_tables``, are
shared by reference across the patch chain.
"""

from __future__ import annotations

import math

import numpy as np

from repro.costmodel.btree_shape import IndexShape, build_shape
from repro.costmodel.params import PathStatistics
from repro.errors import CostModelError
from repro.kernel.yao_vec import npa_array
from repro.workload.load import LoadDistribution


def fold_segments(
    values: np.ndarray,
    segment: np.ndarray,
    rank: np.ndarray,
    segments: int,
    ranks: int,
    init: np.ndarray | None = None,
    multiply: bool = False,
) -> np.ndarray:
    """Sequential per-segment fold in exact rank order.

    Element ``i`` contributes ``values[i]`` to segment ``segment[i]`` at
    fold position ``rank[i]`` (ranks are dense and unique per segment).
    The fold walks ranks left to right with one vectorized combine per
    rank, so each segment accumulates in exactly the order a scalar loop
    over its terms would — missing ranks are padded with the identity
    (``+0.0`` / ``*1.0``), which leaves IEEE-754 accumulators bit-unchanged.
    """
    identity = 1.0 if multiply else 0.0
    width = max(ranks, 1)
    matrix = np.full((segments, width), identity)
    matrix[segment, rank] = values
    if init is None:
        accumulator = np.full(segments, identity)
    else:
        accumulator = np.array(init, dtype=np.float64, copy=True)
    combine = np.multiply if multiply else np.add
    for position in range(ranks):
        combine(accumulator, matrix[:, position], out=accumulator)
    return accumulator


# ----------------------------------------------------------------------
# shape tables and batched primitives
# ----------------------------------------------------------------------
class ShapeTable:
    """Level-profile decomposition of many index shapes.

    Rows follow the construction order of ``shapes``; all level arrays
    are padded to the deepest shape (padded levels are masked out by
    ``level_count`` during descent).
    """

    def __init__(self, shapes: list[IndexShape]) -> None:
        self.shapes = list(shapes)
        count = len(self.shapes)
        depth = max((len(s.levels) for s in self.shapes), default=0)
        self.max_levels = depth
        self.level_records = np.zeros((count, max(depth, 1)))
        self.level_pages = np.zeros((count, max(depth, 1)))
        self.level_count = np.zeros(count, dtype=np.int64)
        self.record_count = np.zeros(count)
        self.record_pages = np.zeros(count)
        self.height = np.zeros(count, dtype=np.int64)
        self.oversized = np.zeros(count, dtype=bool)
        self.empty = np.zeros(count, dtype=bool)
        for index, shape in enumerate(self.shapes):
            self.level_count[index] = len(shape.levels)
            for level_index, level in enumerate(shape.levels):
                self.level_records[index, level_index] = level.records
                self.level_pages[index, level_index] = level.pages
            self.record_count[index] = shape.record_count
            self.record_pages[index] = float(shape.record_pages)
            self.height[index] = shape.height
            self.oversized[index] = shape.oversized
            self.empty[index] = shape.empty
        # Leaf profile (level 0) for CRR and the NIX SA1/SA2 retrievals.
        self.leaf_records = self.level_records[:, 0].copy()
        self.leaf_pages = self.level_pages[:, 0].copy()

    @classmethod
    def from_params(cls, record_counts, record_lengths, key_sizes, sizes):
        """Batched :func:`~repro.costmodel.btree_shape.build_shape`.

        Builds the level profiles of many shapes directly into table
        arrays — one vectorized level per tree layer — replaying the
        scalar construction's arithmetic (the ``⌊p/ln⌋`` packing, the
        ``max(1.0, …)`` floors, the ``records / fanout`` router chain)
        operation for operation, so every level value is the float the
        per-shape builder would produce. The per-shape ``.shapes`` list
        is not materialized.
        """
        rc = np.asarray(record_counts, dtype=np.float64)
        ln = np.asarray(record_lengths, dtype=np.float64)
        ks = np.asarray(key_sizes, dtype=np.int64)
        count = rc.shape[0]
        if (rc < 0).any():
            raise CostModelError("negative record count in shape batch")
        if ((rc > 0) & (ln <= 0)).any():
            raise CostModelError("non-positive record length in shape batch")
        if (ks <= 0).any():
            raise CostModelError("non-positive key size in shape batch")

        page = float(sizes.page_size)
        pointer = float(sizes.pointer_size)
        empty = rc == 0.0
        occupied = ~empty
        oversized = occupied & (ln > page)
        record_pages = np.where(
            occupied, np.maximum(1.0, np.ceil(ln / page)), 0.0
        )
        # Oversized records live in overflow chains; the structural tree
        # then packs short (key, pointer) stubs.
        structural_length = np.where(oversized, ks + pointer, ln)
        per_page = np.maximum(
            1.0, np.floor_divide(page, np.maximum(structural_length, 1.0))
        )
        leaf_pages = np.maximum(1.0, rc / per_page)
        fanout = np.maximum(
            2, sizes.page_size // (ks + sizes.pointer_size)
        ).astype(np.float64)

        record_columns = [np.where(occupied, rc, 0.0)]
        page_columns = [np.where(occupied, leaf_pages, 0.0)]
        level_count = occupied.astype(np.int64)
        pages = leaf_pages
        active = occupied & (pages > 1.0)
        while active.any():
            records = pages  # one router per child page
            grown = records > fanout
            new_pages = np.where(grown, records / fanout, 1.0)
            record_columns.append(np.where(active, records, 0.0))
            page_columns.append(
                np.where(active, np.maximum(new_pages, 1.0), 0.0)
            )
            level_count = level_count + active
            pages = new_pages
            active = active & (new_pages > 1.0)

        self = cls.__new__(cls)
        self.shapes = None
        depth = len(record_columns)
        self.max_levels = depth
        self.level_records = np.stack(record_columns, axis=1)
        self.level_pages = np.stack(page_columns, axis=1)
        self.level_count = level_count
        self.record_count = rc.astype(np.float64, copy=True)
        self.record_pages = record_pages
        self.height = np.where(
            empty, 1, level_count + oversized.astype(np.int64)
        )
        self.oversized = oversized
        self.empty = empty
        self.leaf_records = self.level_records[:, 0].copy()
        self.leaf_pages = self.level_pages[:, 0].copy()
        return self

    def storage_pages(self) -> np.ndarray:
        """Per-shape storage: leaf pages plus any overflow-chain pages."""
        return np.where(
            self.oversized,
            self.leaf_pages + self.record_count * self.record_pages,
            self.leaf_pages,
        )


def _resolve_pages(table: ShapeTable, select: np.ndarray, override) -> np.ndarray:
    """Record pages per element: the ``pr``/``pm`` override or ``⌈ln/p⌉``."""
    if override is None:
        return table.record_pages[select]
    if np.isscalar(override) or getattr(override, "ndim", 1) == 0:
        return np.full(select.shape, float(override))
    return np.asarray(override, dtype=np.float64)


def _descend_batch(
    table: ShapeTable, select: np.ndarray, t: np.ndarray, active: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Batched ``_descend_sum``: level-by-level Yao sums, leaf upward."""
    total = np.zeros(t.shape)
    leaf_touched = np.zeros(t.shape)
    current = t.copy()
    level_count = table.level_count[select]
    for level_index in range(table.max_levels):
        step = active & (level_count > level_index)
        if not step.any():
            break
        rows = select[step]
        touched = npa_array(
            current[step],
            table.level_records[rows, level_index],
            table.level_pages[rows, level_index],
        )
        if level_index == 0:
            leaf_touched[step] = touched
        total[step] += touched
        current[step] = touched
    return total, leaf_touched


def crt_batch(table: ShapeTable, select: np.ndarray, t, pr=None) -> np.ndarray:
    """Batched ``CRT(shape, t, pr)`` over ``(table row, record count)`` pairs."""
    t = np.minimum(np.asarray(t, dtype=np.float64), table.record_count[select])
    active = ~table.empty[select] & (t > 0.0)
    structural, _ = _descend_batch(table, select, t, active)
    oversized = table.oversized[select] & active
    if not oversized.any():
        return structural
    pages = _resolve_pages(table, select, pr)
    return np.where(oversized, structural + t * pages, structural)


def cmt_batch(table: ShapeTable, select: np.ndarray, t, pm=None) -> np.ndarray:
    """Batched ``CMT(shape, t, pm)``."""
    t = np.minimum(np.asarray(t, dtype=np.float64), table.record_count[select])
    active = ~table.empty[select] & (t > 0.0)
    structural, leaf_touched = _descend_batch(table, select, t, active)
    plain = structural + leaf_touched
    oversized = table.oversized[select] & active
    if not oversized.any():
        return np.where(active, plain, 0.0)
    pages = _resolve_pages(table, select, pm)
    return np.where(
        oversized, structural + 2.0 * t * pages, np.where(active, plain, 0.0)
    )


def crr_batch(
    table: ShapeTable, select: np.ndarray, records, pm=None
) -> np.ndarray:
    """Batched ``CRR(aux_shape, records, pm)``."""
    records = np.minimum(
        np.asarray(records, dtype=np.float64), table.record_count[select]
    )
    active = ~table.empty[select] & (records > 0.0)
    out = np.zeros(records.shape)
    plain = active & ~table.oversized[select]
    if plain.any():
        rows = select[plain]
        out[plain] = npa_array(
            records[plain], table.leaf_records[rows], table.leaf_pages[rows]
        )
    oversized = active & table.oversized[select]
    if oversized.any():
        pages = _resolve_pages(table, select, pm)
        out[oversized] = records[oversized] * pages[oversized]
    return out


def cml_batch(table: ShapeTable, pm=None) -> np.ndarray:
    """Batched ``CML(shape, pm)`` over all table rows."""
    height = table.height.astype(np.float64)
    if pm is None:
        pages = table.record_pages
    elif np.isscalar(pm) or getattr(pm, "ndim", 1) == 0:
        pages = np.full(height.shape, float(pm))
    else:
        pages = np.asarray(pm, dtype=np.float64)
    plain = height + 1.0
    overflow = (height - 1.0) + 2.0 * pages
    return np.where(
        table.empty, 0.0, np.where(table.oversized, overflow, plain)
    )


# ----------------------------------------------------------------------
# statistics lowering
# ----------------------------------------------------------------------
class StatArrays:
    """Per-position/per-member arrays lowered from the scalar inputs.

    All quantities are computed through the statistics object's own
    accessors (which memoize when ``config.cache_evaluation`` is on), so
    the lowered values are the very floats the legacy evaluator reads.
    """

    def __init__(
        self,
        stats: PathStatistics,
        load: LoadDistribution,
        range_selectivity: float | None = None,
    ) -> None:
        self.stats = stats
        self.load = load
        self.config = stats.config
        self.sizes = stats.config.sizes
        self.range_selectivity = range_selectivity
        length = stats.length
        self.length = length

        # -- global member axis ----------------------------------------
        self.members = [()] + [stats.members(p) for p in range(1, length + 1)]
        self.member_offset = [0] * (length + 2)
        names: list[str] = []
        positions: list[int] = []
        for position in range(1, length + 1):
            self.member_offset[position] = len(names)
            for name in self.members[position]:
                names.append(name)
                positions.append(position)
        self.member_offset[length + 1] = len(names)
        self.member_names = names
        self.member_position = np.array(positions, dtype=np.int64)
        self.member_count = len(names)

        # -- per-member statistics and load ----------------------------
        count = self.member_count
        self.objects = np.zeros(count)
        self.nin = np.zeros(count)
        self.alpha = np.zeros(count)
        self.beta = np.zeros(count)
        self.gamma = np.zeros(count)
        for gm, name in enumerate(names):
            per_class = stats.stats_of(name)
            self.objects[gm] = per_class.objects
            self.nin[gm] = per_class.fanout
            triplet = load.triplet(name)
            self.alpha[gm] = triplet.query
            self.beta[gm] = triplet.insert
            self.gamma[gm] = triplet.delete

        # -- per-position aggregates -----------------------------------
        self.total_objects = [0.0] * (length + 1)
        self.sum_k = [0.0] * (length + 1)
        self.distinct_union = [0.0] * (length + 1)
        self.nc = [0] * (length + 1)
        for position in range(1, length + 1):
            self.total_objects[position] = stats.total_objects(position)
            self.sum_k[position] = stats.sum_k(position)
            self.distinct_union[position] = stats.distinct_union(position)
            self.nc[position] = stats.nc(position)

        # -- upstream query mass (Section 3.2 subpath derivation) ------
        self.upstream = [0.0] * (length + 2)
        for start in range(1, length + 1):
            self.upstream[start] = load._upstream_query(start)

        # -- probe fan-in and following deletions per end --------------
        initial = 1.0
        if range_selectivity is not None:
            initial = max(
                1.0, range_selectivity * stats.distinct_union(length)
            )
        self.probe_initial = initial
        self.probes = [1.0] * (length + 1)
        self.following = [0.0] * (length + 1)
        for end in range(1, length + 1):
            if end < length:
                self.probes[end] = stats.probe_keys(end, length, initial)
                self.following[end] = sum(
                    load.triplet(member).delete
                    for member in stats.members(end + 1)
                )
        # keys[level][end]: values probed in a level index of a subpath
        # ending at ``end`` (keys[end][end] is the row's probe fan-in).
        # probe_keys(level, end, x) folds levels end..level+1 descending,
        # so each column extends the entry above by one (multiply,
        # clamp) step — the same left fold the scalar loop runs.
        clamp = self.config.clamp_cardinalities
        self.keys = [[0.0] * (length + 1) for _ in range(length + 1)]
        for end in range(1, length + 1):
            value = self.probes[end]
            self.keys[end][end] = value
            for level in range(end - 1, 0, -1):
                value = value * self.sum_k[level + 1]
                if clamp:
                    cap = self.total_objects[level + 1]
                    if value > cap:
                        value = cap
                self.keys[level][end] = value

        # -- nin-bar chains and occupancy ------------------------------
        self.mean_fanout = [0.0] * (length + 1)
        for position in range(1, length + 1):
            self.mean_fanout[position] = stats.mean_fanout(position)
        # ninbar(p, j, e) is a left fold of mean fanouts over p+1..e with a
        # final cap; extending the fold one level at a time reproduces the
        # scalar loop's multiply order exactly, so the capped values are
        # the very floats stats.ninbar would return.
        self.ninbar = np.zeros((count, length + 1))
        for gm in range(count):
            position = int(self.member_position[gm])
            running = self.nin[gm]
            for end in range(position, length + 1):
                if end > position:
                    running = running * self.mean_fanout[end]
                cap = self.distinct_union[end]
                self.ninbar[gm, end] = min(running, cap) if cap > 0 else running
        self.occupied_next = np.zeros(count)
        for gm, name in enumerate(names):
            position = int(self.member_position[gm])
            if position < length:
                self.occupied_next[gm] = stats.occupied_members(
                    position + 1, self.nin[gm]
                )

        # -- extent pages (no-index scans, NX intermediate levels) -----
        per_page = max(
            1,
            self.sizes.page_size
            // (self.sizes.object_size + self.sizes.object_overhead_size),
        )
        self.extent_pages = np.zeros(count)
        for gm in range(count):
            objects = self.objects[gm]
            if objects > 0:
                self.extent_pages[gm] = float(math.ceil(objects / per_page))
        # Root-extent pages per starting position (NX revalidation).
        self.root_extent_pages = [0.0] * (length + 1)
        for position in range(1, length + 1):
            self.root_extent_pages[position] = sum(
                math.ceil(self.stats.n(position, member) / per_page)
                for member in self.members[position]
                if self.stats.n(position, member) > 0
            )

        # -- NIX parent chains (row-independent (position, level) pairs)
        # parents[p][lev] follows the scalar recurrence of
        # NIXCostModel.delete_cost exactly, including the restart-at-1.0
        # behaviour when a level's fan-in is zero.
        self.parents = [[0.0] * (length + 1) for _ in range(length + 1)]
        self.narp = [[0.0] * (length + 1) for _ in range(length + 1)]
        clamp = self.config.clamp_cardinalities
        for position in range(1, length + 1):
            running = 0.0
            for level in range(position - 1, 0, -1):
                running = (running if running > 0 else 1.0) * self.sum_k[level]
                if clamp:
                    running = min(running, self.total_objects[level])
                self.parents[position][level] = running
                self.narp[position][level] = stats.occupied_members(
                    level, running
                )

        # -- index key lengths (lazy, see key_size_at) -----------------
        self._key_sizes = [0] * (length + 1)

        # -- NIX delpoint subtotals: Σ_j nin-bar per (position, end) ---
        self.nix_subtotal = [[0.0] * (length + 1) for _ in range(length + 1)]
        for position in range(1, length + 1):
            base = self.member_offset[position]
            width = len(self.members[position])
            for end in range(position, length + 1):
                subtotal = 0.0
                for offset in range(width):
                    subtotal += self.ninbar[base + offset, end]
                self.nix_subtotal[position][end] = subtotal

        # -- cross-call caches ------------------------------------------
        # _tables holds stats-derived, row-independent tables (per-end
        # probe columns, insert/interior vectors, storage term lists,
        # the extent-scan table); patched clones share it by reference.
        # _units memoizes per-(organization, rows) evaluation units —
        # per-entry probe/insert/delete costs plus per-row CMD rates and
        # storage sums — which are statistics-only (the workload enters
        # the formulas exclusively through the frequency folds), so
        # patched clones share it by reference too. Bounded FIFO.
        # _results memoizes full evaluate() outputs per (organization,
        # rows) — load-dependent, so every clone starts its own dict.
        self._tables: dict = {}
        self._units: dict = {}
        self._results: dict = {}

    # ------------------------------------------------------------------
    # cross-call caches and workload patching
    # ------------------------------------------------------------------
    def cached_table(self, key, build):
        """Row-independent table memo (stats-derived values only).

        Entries must depend on nothing but the statistics, the physical
        configuration and ``range_selectivity`` — :meth:`patched` clones
        share this dict by reference, so a load-dependent entry here
        would leak stale costs across workloads.
        """
        table = self._tables.get(key)
        if table is None:
            table = build()
            self._tables[key] = table
        return table

    def cached_units(self, key, build):
        """Per-(organization, rows) evaluation-unit memo, bounded FIFO.

        Same statistics-only contract as :meth:`cached_table` — the
        cached arrays are the pre-fold units of one organization over
        one row set, reused verbatim under any drifted workload. Kept
        apart from ``_tables`` so eviction never drops the small
        per-end columns that every row set shares.
        """
        units = self._units.get(key)
        if units is None:
            units = build()
            if len(self._units) >= _UNITS_CACHE_LIMIT:
                self._units.pop(next(iter(self._units)))
            self._units[key] = units
        return units

    def cached_result(self, organization, rows_key):
        """A memoized ``evaluate`` output for identical (org, rows)."""
        return self._results.get((organization, rows_key))

    def store_result(self, organization, rows_key, value) -> None:
        """Memoize one ``evaluate`` output (bounded, FIFO eviction)."""
        if len(self._results) >= _RESULT_CACHE_LIMIT:
            self._results.pop(next(iter(self._results)))
        self._results[(organization, rows_key)] = value

    def patched(self, load: LoadDistribution) -> "StatArrays":
        """The lowering for the same statistics under a drifted workload.

        Every stats-derived field — including the accumulated ``_tables``
        and ``_units`` memos — is shared by reference; only the
        load-derived columns are
        rebuilt: α/β/γ are patched at the member slots whose triplets
        moved, then the upstream-query and following-deletion chains are
        re-derived through the workload's own accessors, so every value
        is the very float a from-scratch lowering would produce.
        """
        clone = StatArrays.__new__(StatArrays)
        clone.__dict__.update(self.__dict__)
        clone.load = load
        clone._results = {}
        alpha = self.alpha.copy()
        beta = self.beta.copy()
        gamma = self.gamma.copy()
        for gm, name in enumerate(self.member_names):
            triplet = load.triplet(name)
            alpha[gm] = triplet.query
            beta[gm] = triplet.insert
            gamma[gm] = triplet.delete
        clone.alpha = alpha
        clone.beta = beta
        clone.gamma = gamma
        length = self.length
        upstream = [0.0] * (length + 2)
        for start in range(1, length + 1):
            upstream[start] = load._upstream_query(start)
        clone.upstream = upstream
        following = [0.0] * (length + 1)
        for end in range(1, length):
            following[end] = sum(
                load.triplet(member).delete
                for member in self.members[end + 1]
            )
        clone.following = following
        return clone

    # ------------------------------------------------------------------
    # geometry helpers (mirroring SubpathCostModel)
    # ------------------------------------------------------------------
    def key_size_at(self, position: int) -> int:
        """Key length of an index on ``A_position``."""
        cached = self._key_sizes[position]
        if cached == 0:
            attribute = self.stats.path.attribute_def_at(position)
            cached = self.sizes.key_size(atomic=attribute.is_atomic)
            self._key_sizes[position] = cached
        return cached

    def nix_entry_size(self, position: int) -> int:
        """NIX oid entry size: ``(oid, numchild)`` for multi-valued."""
        attribute = self.stats.path.attribute_def_at(position)
        if attribute.multi_valued:
            return self.sizes.oid_size + self.sizes.numchild_size
        return self.sizes.oid_size

    # ------------------------------------------------------------------
    # shared (subpath-independent) shapes
    # ------------------------------------------------------------------
    def mx_shape(self, position: int, name: str) -> IndexShape:
        """The MX per-class shape (same key as the legacy shape cache)."""
        sizes = self.sizes
        stats = self.stats

        def build() -> IndexShape:
            record_length = (
                sizes.record_header_size
                + self.key_size_at(position)
                + stats.k(position, name) * sizes.oid_size
            )
            return build_shape(
                record_count=stats.d(position, name),
                record_length=record_length,
                key_size=self.key_size_at(position),
                sizes=sizes,
            )

        return stats.cached_shape(("mx", position, name), build)

    def mix_shape(self, position: int) -> IndexShape:
        """The MIX per-level shape (same key as the legacy shape cache)."""
        sizes = self.sizes
        stats = self.stats

        def build() -> IndexShape:
            record_length = (
                sizes.record_header_size
                + self.key_size_at(position)
                + stats.nc(position) * sizes.class_directory_entry_size
                + stats.sum_k(position) * sizes.oid_size
            )
            return build_shape(
                record_count=stats.distinct_union(position),
                record_length=record_length,
                key_size=self.key_size_at(position),
                sizes=sizes,
            )

        return stats.cached_shape(("mix", position), build)


# ----------------------------------------------------------------------
# persistent lowering cache (lives on the statistics object)
# ----------------------------------------------------------------------
# A handful of entries covers the real access patterns: a session loop
# patches one lowering per step (the previous step's entry is the hit),
# and a what-if explorer toggles between a few candidate workloads.
_ARRAYS_CACHE_LIMIT = 4
# evaluate() outputs per (organization, rows) tuple; warm rebuilds of the
# same matrix hit one entry per canonical organization.
_RESULT_CACHE_LIMIT = 32
_UNITS_CACHE_LIMIT = 64


def _stats_cache(stats: PathStatistics) -> list | None:
    """The bounded lowering cache on ``stats``, or None when disabled."""
    if not stats.config.cache_evaluation:
        return None
    cache = getattr(stats, "_stat_arrays_cache", None)
    if cache is None:
        # Statistics unpickled from pre-cache checkpoints lack the slot.
        cache = []
        stats._stat_arrays_cache = cache
    return cache


def find_cached_arrays(
    stats: PathStatistics,
    load: LoadDistribution,
    range_selectivity: float | None = None,
) -> StatArrays | None:
    """The cached lowering for exactly (stats, load, selectivity), if any."""
    cache = _stats_cache(stats)
    if cache is None:
        return None
    for arrays in reversed(cache):
        if arrays.load is load and arrays.range_selectivity == range_selectivity:
            return arrays
    return None


def remember_stat_arrays(arrays: StatArrays) -> None:
    """Retain one lowering in its statistics object's bounded cache."""
    cache = _stats_cache(arrays.stats)
    if cache is None:
        return
    cache.append(arrays)
    if len(cache) > _ARRAYS_CACHE_LIMIT:
        del cache[: len(cache) - _ARRAYS_CACHE_LIMIT]


def get_stat_arrays(
    stats: PathStatistics,
    load: LoadDistribution,
    range_selectivity: float | None = None,
) -> StatArrays:
    """The lowering for (stats, load), via the persistent cache.

    Identity of the workload object is the cache key — a drifted load is
    a *new* object, for which :meth:`StatArrays.patched` (reached through
    the recompute path) is the cheap route. With
    ``config.cache_evaluation`` off every call lowers afresh.
    """
    found = find_cached_arrays(stats, load, range_selectivity)
    if found is not None:
        return found
    arrays = StatArrays(stats, load, range_selectivity)
    remember_stat_arrays(arrays)
    return arrays
