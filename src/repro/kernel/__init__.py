"""Columnar numpy evaluation kernel for the cost matrix.

``repro.kernel`` computes the full ``Cost_Matrix`` as array operations
over all (row, organization) pairs at once:

* :class:`~repro.kernel.arrays.StatArrays` lowers
  :class:`~repro.costmodel.params.PathStatistics` and a workload into
  contiguous per-position arrays (objects, distinct values, fanouts,
  probe-key chains, nin-bar chains, occupancy counts, extent pages);
* :mod:`~repro.kernel.evaluate` applies vectorized CRT/CMT/CRR formulas
  per organization over all subpath rows, folding the per-row sums in
  exactly the accumulation order of the legacy evaluator so the resulting
  matrix is **bit-identical** to
  :func:`repro.costmodel.subpath.subpath_processing_cost` row by row;
* :func:`compute_rows` is the drop-in replacement for the legacy serial
  row loop that :meth:`repro.core.cost_matrix.CostMatrix.compute`
  dispatches to when ``kernel="columnar"`` resolves.

numpy is optional for the package as a whole: :func:`is_available`
reports whether the kernel can run, and callers fall back to the legacy
evaluator (the parity oracle) when it cannot.
"""

from __future__ import annotations

_NUMPY_AVAILABLE: bool | None = None


def is_available() -> bool:
    """Whether the columnar kernel can run (numpy importable)."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        try:  # pragma: no cover - trivially platform dependent
            import numpy  # noqa: F401

            _NUMPY_AVAILABLE = True
        except ImportError:
            _NUMPY_AVAILABLE = False
    return _NUMPY_AVAILABLE


def compute_rows(stats, load, organizations, rows, range_selectivity=None):
    """Price matrix rows with the columnar kernel.

    Same contract as the legacy serial loop in
    :meth:`repro.core.cost_matrix.CostMatrix._compute_rows`: returns
    ``{(start, end): {organization: SubpathCost}}`` for exactly the
    requested rows. Raises :class:`ImportError` when numpy is missing —
    callers gate on :func:`is_available`.
    """
    from repro.kernel.evaluate import evaluate_rows

    return evaluate_rows(stats, load, organizations, rows, range_selectivity)


__all__ = ["is_available", "compute_rows"]
