"""Columnar numpy evaluation kernel for the cost matrix.

``repro.kernel`` computes the full ``Cost_Matrix`` as array operations
over all (row, organization) pairs at once:

* :class:`~repro.kernel.arrays.StatArrays` lowers
  :class:`~repro.costmodel.params.PathStatistics` and a workload into
  contiguous per-position arrays (objects, distinct values, fanouts,
  probe-key chains, nin-bar chains, occupancy counts, extent pages);
* :mod:`~repro.kernel.evaluate` applies vectorized CRT/CMT/CRR formulas
  per organization over all subpath rows, folding the per-row sums in
  exactly the accumulation order of the legacy evaluator so the resulting
  matrix is **bit-identical** to
  :func:`repro.costmodel.subpath.subpath_processing_cost` row by row;
* :func:`compute_rows` is the drop-in replacement for the legacy serial
  row loop that :meth:`repro.core.cost_matrix.CostMatrix.compute`
  dispatches to when ``kernel="columnar"`` resolves.

numpy is optional for the package as a whole: :func:`is_available`
reports whether the kernel can run, and callers fall back to the legacy
evaluator (the parity oracle) when it cannot.
"""

from __future__ import annotations

_NUMPY_AVAILABLE: bool | None = None


def is_available() -> bool:
    """Whether the columnar kernel can run (numpy importable)."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        try:  # pragma: no cover - trivially platform dependent
            import numpy  # noqa: F401

            _NUMPY_AVAILABLE = True
        except ImportError:
            _NUMPY_AVAILABLE = False
    return _NUMPY_AVAILABLE


def compute_rows(
    stats, load, organizations, rows, range_selectivity=None, arrays=None
):
    """Price matrix rows with the columnar kernel.

    Same contract as the legacy serial loop in
    :meth:`repro.core.cost_matrix.CostMatrix._compute_rows`: returns
    ``{(start, end): {organization: SubpathCost}}`` for exactly the
    requested rows. ``arrays`` optionally supplies a pre-lowered (or
    workload-patched) :class:`~repro.kernel.arrays.StatArrays` for these
    inputs. Raises :class:`ImportError` when numpy is missing — callers
    gate on :func:`is_available`.
    """
    from repro.kernel.evaluate import evaluate_rows

    return evaluate_rows(
        stats, load, organizations, rows, range_selectivity, arrays=arrays
    )


def lower(stats, load, range_selectivity=None):
    """The lowered :class:`StatArrays` for (stats, load), cache-backed.

    Used to lower once in the parent before a fork fan-out and to warm
    the persistent cache ahead of session loops. Requires numpy.
    """
    from repro.kernel.arrays import get_stat_arrays

    return get_stat_arrays(stats, load, range_selectivity)


def cached_lowering(stats, load, range_selectivity=None):
    """The cached lowering for exactly (stats, load), or ``None``.

    Never lowers: a cheap probe for the dirty-slice recompute path,
    which only pays for a workload patch when a base lowering already
    exists. Requires numpy.
    """
    from repro.kernel.arrays import find_cached_arrays

    return find_cached_arrays(stats, load, range_selectivity)


def patch_lowering(arrays, load):
    """Re-key a lowering to a drifted workload and retain it.

    Shares every stats-derived table of ``arrays`` by reference and
    rebuilds only the load-derived columns (see
    :meth:`~repro.kernel.arrays.StatArrays.patched`); the patched
    lowering joins the persistent cache so consecutive what-if steps
    chain patches instead of re-lowering. Requires numpy.
    """
    from repro.kernel.arrays import remember_stat_arrays

    patched = arrays.patched(load)
    remember_stat_arrays(patched)
    return patched


__all__ = [
    "is_available",
    "compute_rows",
    "lower",
    "cached_lowering",
    "patch_lowering",
]
