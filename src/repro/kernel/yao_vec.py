"""Vectorized Yao estimates for the columnar kernel.

:func:`npa_array` evaluates Yao's ``npa(t, n, m)`` elementwise over numpy
arrays and is **bit-identical** to mapping the scalar
:func:`repro.costmodel.yao.npa` over the same elements. Identity is
achieved by construction, not by accident:

* the trivial branches (``t == 0``/``n == 0``/``m == 0``, ``m >= n``,
  ``t >= n``) assign the same closed-form values the scalar code returns;
* "hard" elements with few product factors run a vectorized replica of the
  scalar Python loop — the same multiply/divide sequence per element, the
  same ``1e-18`` early-exit, the same interpolation arithmetic for
  fractional ``t`` (:func:`repro.costmodel.yao._npa_pair`);
* hard elements with many factors — where the scalar itself switches to a
  sequential numpy product over an ``arange`` of factors — are grouped by
  ``(n, m)`` and answered from one ``cumprod`` per group: ``cumprod`` and
  ``multiply.reduce`` accumulate in the same left-to-right order, so every
  prefix product carries exactly the scalar's bits;
* the boundary and exotic cases (a staircase just under the scalar's
  vectorization threshold, Cardenas territory) are routed through the
  scalar reference one element at a time, so they cannot drift.

The module imports numpy unconditionally; callers gate on
:func:`repro.kernel.is_available` before importing it.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.yao import _EXACT_LIMIT, _VECTORIZE_MIN_FACTORS, npa

#: Hard elements whose integer staircase needs at least this many product
#: factors fall back to the scalar reference (mirrors the scalar code's
#: own switch to its numpy product at ``_VECTORIZE_MIN_FACTORS``; below
#: it the scalar path is the plain Python loop replicated here).
_SMALL_T_MAX = 64

#: The scalar early-exit threshold of ``_untouched_fraction``.
_PRODUCT_FLOOR = 1e-18


def npa_array(t, n, m) -> np.ndarray:
    """Elementwise ``npa(t, n, m)`` over broadcastable float64 arrays.

    Inputs must be finite and non-negative (the kernel only feeds
    quantities derived from validated statistics); the scalar fallback
    still raises for invalid hard elements.
    """
    t, n, m = np.broadcast_arrays(
        np.asarray(t, dtype=np.float64),
        np.asarray(n, dtype=np.float64),
        np.asarray(m, dtype=np.float64),
    )
    shape = t.shape
    t = np.ascontiguousarray(t).ravel()
    n = np.ascontiguousarray(n).ravel()
    m = np.ascontiguousarray(m).ravel()
    out = np.zeros(t.shape)

    zero = (t == 0.0) | (n == 0.0) | (m == 0.0)
    one_per_page = (m >= n) & ~zero
    if one_per_page.any():
        # At most one record per page: each retrieved record is one page.
        np.copyto(out, np.minimum(t, n), where=one_per_page)
    full = (t >= n) & ~zero & ~one_per_page
    if full.any():
        np.copyto(out, m, where=full)

    hard = ~(zero | one_per_page | full)
    if hard.any():
        index = np.nonzero(hard)[0]
        out[index] = _npa_hard(t[index], n[index], m[index])
    return out.reshape(shape)


def _npa_hard(t: np.ndarray, n: np.ndarray, m: np.ndarray) -> np.ndarray:
    """The non-trivial region ``0 < t < n``, ``m < n``.

    Matrix batches repeat the same ``(t, n, m)`` triples heavily (the same
    probe chains recur in every row sharing an endpoint), so the hard
    region is deduplicated first and each distinct triple is evaluated
    once — the batched equivalent of the scalar path's ``lru_cache``.
    """
    # Group identical triples via a lexicographic sort on the native
    # float64 keys (np.unique(axis=0)'s void-dtype argsort is an order of
    # magnitude slower on batches this size).
    order = np.lexsort((m, n, t))
    ts, ns, ms = t[order], n[order], m[order]
    first = np.empty(ts.shape, dtype=bool)
    first[:1] = True
    first[1:] = (
        (ts[1:] != ts[:-1]) | (ns[1:] != ns[:-1]) | (ms[1:] != ms[:-1])
    )
    group = np.cumsum(first) - 1
    inverse = np.empty(ts.shape, dtype=np.intp)
    inverse[order] = group
    ut, un, um = ts[first], ns[first], ms[first]
    values = np.empty(ut.shape)
    lower = np.floor(ut)
    big = lower + 1.0 >= _SMALL_T_MAX
    if big.any():
        # The grouped-cumprod path covers exactly the region where the
        # scalar uses its own sequential numpy product (floor(t) at or
        # beyond its vectorization threshold, within the exact limit);
        # the boundary staircase and Cardenas territory stay scalar.
        upper = np.where(ut != lower, lower + 1.0, lower)
        grouped = big & (lower >= _VECTORIZE_MIN_FACTORS) & (upper <= _EXACT_LIMIT)
        scalar = big & ~grouped
        if scalar.any():
            index = np.nonzero(scalar)[0]
            values[index] = [
                npa(a, b, c)
                for a, b, c in zip(
                    ut[index].tolist(), un[index].tolist(), um[index].tolist()
                )
            ]
        if grouped.any():
            index = np.nonzero(grouped)[0]
            values[index] = _npa_big(ut[index], un[index], um[index])
    small = ~big
    if small.any():
        index = np.nonzero(small)[0]
        values[index] = _npa_small(ut[index], un[index], um[index])
    return values[inverse.reshape(-1)]


def _npa_big(t: np.ndarray, n: np.ndarray, m: np.ndarray) -> np.ndarray:
    """Hard elements with a long staircase: one ``cumprod`` per ``(n, m)``.

    For ``floor(t) >= _VECTORIZE_MIN_FACTORS`` the scalar
    ``_untouched_fraction`` computes a full sequential numpy product over
    ``arange`` factors (no mid-loop early exit; a trailing ``1e-18``
    threshold instead). All elements sharing ``(n, m)`` draw prefixes of
    the *same* factor sequence, so one ``cumprod`` per group yields every
    element's product with identical bits — ``cumprod`` and the scalar's
    ``multiply.reduce`` both accumulate strictly left to right.
    """
    out = np.empty(t.shape)
    order = np.lexsort((n, m))
    ts, ns, ms = t[order], n[order], m[order]
    first = np.empty(ts.shape, dtype=bool)
    first[:1] = True
    first[1:] = (ns[1:] != ns[:-1]) | (ms[1:] != ms[:-1])
    starts = np.nonzero(first)[0]
    bounds = np.append(starts, ts.shape[0])
    for g in range(starts.shape[0]):
        span = slice(int(bounds[g]), int(bounds[g + 1]))
        nv = float(ns.flat[starts[g]])
        mv = float(ms.flat[starts[g]])
        tg = ts[span]
        low_t = np.floor(tg)
        frac = tg - low_t
        available = nv - nv / mv
        top = int(low_t.max())
        offsets = np.arange(1.0, top + 1.0)
        factors = (available + 1.0 - offsets) / (nv + 1.0 - offsets)
        prefix = np.cumprod(factors)
        product = prefix[low_t.astype(np.intp) - 1]
        product = np.where(product >= _PRODUCT_FLOOR, product, 0.0)
        # The scalar's pre-product guard: a non-positive factor in range
        # means every page is touched.
        product[available - low_t + 1.0 <= 0.0] = 0.0
        low_value = np.minimum(np.maximum(mv * (1.0 - product), 0.0), mv)
        fractional = frac > 0.0
        if fractional.any():
            # _npa_pair's one-more-factor extension to the upper
            # neighbour, in the scalar's exact operation order.
            upper = low_t + 1.0
            numerator = available - upper + 1.0
            saturated = (product == 0.0) | (numerator <= 0.0)
            extended = product * (numerator / (nv - upper + 1.0))
            high_value = np.where(
                saturated,
                mv,
                np.minimum(np.maximum(mv * (1.0 - extended), 0.0), mv),
            )
            out[order[span]] = np.where(
                fractional,
                (1.0 - frac) * low_value + frac * high_value,
                low_value,
            )
        else:
            out[order[span]] = low_value
    return out


def _untouched_fraction_vec(
    counts: np.ndarray, n: np.ndarray, m: np.ndarray
) -> np.ndarray:
    """Vector replica of the scalar ``_untouched_fraction`` Python loop.

    ``counts`` holds integer-valued factor counts in ``[1, _SMALL_T_MAX)``.
    Per element the multiply sequence — and the early exit to an exact
    0.0 once the running product drops below ``1e-18`` — matches the
    scalar loop step for step.
    """
    available = n - n / m
    product = np.ones(counts.shape)
    # A non-positive factor anywhere in the product: every page is touched.
    product[available - counts + 1.0 <= 0.0] = 0.0
    alive = product > 0.0
    top = int(counts.max())
    for i in range(1, top + 1):
        step = alive & (counts >= i)
        if not step.any():
            break
        product[step] *= (available[step] - i + 1) / (n[step] - i + 1)
        died = step & (product < _PRODUCT_FLOOR)
        if died.any():
            product[died] = 0.0
            alive &= ~died
    return product


def _clamp(value: np.ndarray, m: np.ndarray) -> np.ndarray:
    """``min(max(value, 0.0), m)`` — the scalar result clamp."""
    return np.minimum(np.maximum(value, 0.0), m)


def _npa_small(t: np.ndarray, n: np.ndarray, m: np.ndarray) -> np.ndarray:
    """Hard elements with a short staircase: the vectorized exact path."""
    out = np.empty(t.shape)
    lower = np.floor(t)
    fraction = t - lower
    integer = fraction == 0.0

    if integer.any():
        index = np.nonzero(integer)[0]
        product = _untouched_fraction_vec(t[index], n[index], m[index])
        out[index] = _clamp(m[index] * (1.0 - product), m[index])

    fractional = ~integer
    if fractional.any():
        index = np.nonzero(fractional)[0]
        tf, nf, mf = t[index], n[index], m[index]
        lowf = lower[index]
        frac = fraction[index]
        upper = lowf + 1.0
        low_value = np.zeros(tf.shape)
        high_value = np.empty(tf.shape)
        # lower == 0: npa(0) is 0 and the upper neighbour is npa(1).
        at_zero = lowf <= 0.0
        if at_zero.any():
            zi = np.nonzero(at_zero)[0]
            product = _untouched_fraction_vec(
                np.ones(zi.shape), nf[zi], mf[zi]
            )
            high_value[zi] = _clamp(mf[zi] * (1.0 - product), mf[zi])
        positive = ~at_zero
        if positive.any():
            pi = np.nonzero(positive)[0]
            product = _untouched_fraction_vec(lowf[pi], nf[pi], mf[pi])
            low_value[pi] = _clamp(mf[pi] * (1.0 - product), mf[pi])
            # One more factor extends the product to the upper neighbour.
            numerator = nf[pi] - nf[pi] / mf[pi] - upper[pi] + 1.0
            saturated = (product == 0.0) | (numerator <= 0.0)
            high = np.empty(pi.shape)
            if saturated.any():
                high[saturated] = mf[pi][saturated]
            open_ = ~saturated
            if open_.any():
                extended = product[open_] * (
                    numerator[open_] / (nf[pi][open_] - upper[pi][open_] + 1.0)
                )
                high[open_] = _clamp(
                    mf[pi][open_] * (1.0 - extended), mf[pi][open_]
                )
            high_value[pi] = high
        out[index] = (1.0 - frac) * low_value + frac * high_value
    return out
