"""Batched evaluation of matrix rows: the columnar kernel core.

:func:`evaluate_rows` prices a set of ``Cost_Matrix`` rows for a set of
organizations in one pass. Rows and their (position, member) entries are
flattened into index arrays once (:class:`_RowBatch`); each organization
is then evaluated as a handful of batched CRT/CMT/CRR calls plus
:func:`~repro.kernel.arrays.fold_segments` accumulations that replay the
legacy evaluator's left-to-right sums **in the same order**, so every
matrix value is bit-identical to
:func:`repro.costmodel.subpath.subpath_processing_cost`.

Masked terms are padded with ``+0.0`` (all accumulators and terms are
non-negative, so ``x + 0.0`` leaves the bits unchanged) and per-row
scalar tails (index heights, storage sums) run through the very scalar
primitives the legacy evaluator uses. Range-predicate rows ending at the
path's last attribute fall back to the legacy evaluator — they price a
leaf-walk that is already row-constant and outside the hot loop.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.primitives import cml, cmt, crt
from repro.costmodel.subpath import (
    SubpathContext,
    SubpathCost,
    subpath_processing_cost,
)
from repro.kernel.arrays import (
    ShapeTable,
    StatArrays,
    cml_batch,
    cmt_batch,
    crr_batch,
    crt_batch,
    fold_segments,
    get_stat_arrays,
)
from repro.kernel.yao_vec import npa_array
from repro.organizations import IndexOrganization

_CANONICAL = {
    IndexOrganization.SIX: IndexOrganization.MX,
    IndexOrganization.IIX: IndexOrganization.MIX,
}


def _canonical(organization: IndexOrganization) -> IndexOrganization:
    return _CANONICAL.get(organization, organization)


def evaluate_rows(
    stats, load, organizations, rows, range_selectivity=None, arrays=None
):
    """Price ``rows`` for every organization; see :func:`repro.kernel.compute_rows`.

    ``arrays`` short-circuits the lowering: callers holding a (possibly
    patched) :class:`StatArrays` for exactly these inputs pass it in;
    otherwise the persistent cache on ``stats`` is consulted.
    """
    organizations = list(organizations)
    length = stats.length
    results: dict = {}
    kernel_rows = []
    for start, end in rows:
        if range_selectivity is not None and end == length:
            # Range-ending rows price a contiguous leaf walk (a different
            # query primitive); the legacy evaluator stays their oracle.
            context = SubpathContext.build(
                stats, load, start, end, range_selectivity=range_selectivity
            )
            results[(start, end)] = {
                organization: subpath_processing_cost(
                    stats,
                    load,
                    start,
                    end,
                    organization,
                    range_selectivity=range_selectivity,
                    context=context,
                )
                for organization in organizations
            }
        else:
            kernel_rows.append((int(start), int(end)))
    if not kernel_rows:
        return results

    if arrays is None:
        arrays = get_stat_arrays(stats, load, range_selectivity)
    rows_key = tuple(kernel_rows)
    batch = None
    # SIX/IIX share MX/MIX's pricing, so each canonical organization is
    # evaluated once and its per-row SubpathCost objects are reused for
    # every alias that requested it. Identical (organization, rows)
    # requests against a persistent lowering replay the memoized arrays.
    costs: dict = {}
    for organization in organizations:
        canonical = _canonical(organization)
        if canonical in costs:
            continue
        cached = arrays.cached_result(canonical, rows_key)
        if cached is None:
            if batch is None:
                batch = _RowBatch(arrays, kernel_rows)
            cached = batch.evaluate(canonical)
            arrays.store_result(canonical, rows_key, cached)
        query, insert, delete, cmd_rate, storage = cached
        queries = query.tolist()
        inserts = insert.tolist()
        deletes = delete.tolist()
        rates = cmd_rate.tolist()
        storages = storage.tolist()
        built = []
        for index, (start, end) in enumerate(kernel_rows):
            per_deletion = rates[index] if end < length else 0.0
            cmd = 0.0
            if per_deletion:
                cmd = arrays.following[end] * per_deletion
            built.append(
                SubpathCost(
                    organization=canonical,
                    start=start,
                    end=end,
                    query=queries[index],
                    insert=inserts[index],
                    delete=deletes[index],
                    cmd=cmd,
                    storage_pages=storages[index],
                    cmd_per_deletion=per_deletion,
                )
            )
        costs[canonical] = built

    columns = [
        (organization, costs[_canonical(organization)])
        for organization in organizations
    ]
    for index, (start, end) in enumerate(kernel_rows):
        results[(start, end)] = {
            organization: built[index] for organization, built in columns
        }
    return results


class _RowBatch:
    """Index arrays over the batch's rows, (row, position) pairs and
    (row, position, member) entries, in the legacy iteration order."""

    def __init__(self, arrays: StatArrays, rows: list[tuple[int, int]]) -> None:
        self.arrays = arrays
        self.rows = rows
        self.rows_key = tuple(rows)
        a = arrays
        length = a.length
        count = len(rows)
        self.row_count = count
        self.srow = np.array([r[0] for r in rows], dtype=np.int64)
        self.erow = np.array([r[1] for r in rows], dtype=np.int64)
        m_counts = np.array(
            [0] + [len(a.members[p]) for p in range(1, length + 1)],
            dtype=np.int64,
        )
        self.m_counts = m_counts
        offset_np = np.array(a.member_offset[: length + 2], dtype=np.int64)

        # -- (row, position) pairs, positions ascending per row --------
        spans = self.erow - self.srow + 1
        pair_count = int(spans.sum())
        self.pair_count = pair_count
        pair_row = np.repeat(np.arange(count), spans)
        pair_offsets = np.concatenate(([0], np.cumsum(spans)[:-1]))
        pair_pos = (
            np.arange(pair_count) - pair_offsets[pair_row] + self.srow[pair_row]
        )
        self.pair_row = pair_row
        self.pair_pos = pair_pos

        # -- (row, position, member) entries, members in hierarchy order
        per_pair = m_counts[pair_pos]
        entry_count = int(per_pair.sum())
        self.entry_count = entry_count
        entry_pair = np.repeat(np.arange(pair_count), per_pair)
        entry_offsets = np.concatenate(([0], np.cumsum(per_pair)[:-1]))
        within = np.arange(entry_count) - entry_offsets[entry_pair]
        self.entry_pair = entry_pair
        self.entry_row = pair_row[entry_pair]
        self.entry_pos = pair_pos[entry_pair]
        self.entry_gm = offset_np[self.entry_pos] + within
        row_entry_counts = np.bincount(
            self.entry_row, minlength=count
        ).astype(np.int64)
        row_entry_offsets = np.concatenate(
            ([0], np.cumsum(row_entry_counts)[:-1])
        )
        self.entry_rank = np.arange(entry_count) - row_entry_offsets[self.entry_row]
        self.max_entry_rank = int(row_entry_counts.max())
        self.entry_start = self.srow[self.entry_row]
        self.entry_end = self.erow[self.entry_row]

        # -- per-entry statistics and derived load ---------------------
        probes_np = np.array(a.probes)
        self.probes_row = probes_np[self.erow]
        self.probes_entry = probes_np[self.entry_end]
        self.nin_entry = a.nin[self.entry_gm]
        self.ninbar_entry = a.ninbar[self.entry_gm, self.entry_end]
        alpha = a.alpha[self.entry_gm].copy()
        root_gm = np.zeros(length + 1, dtype=np.int64)
        for position in range(1, length + 1):
            root = a.stats.path.class_at(position)
            root_gm[position] = a.member_offset[position] + a.members[
                position
            ].index(root)
        upstream_np = np.array(a.upstream[: length + 2])
        mask = (
            (self.entry_pos == self.entry_start)
            & (self.entry_start > 1)
            & (self.entry_gm == root_gm[self.entry_pos])
        )
        alpha[mask] = alpha[mask] + upstream_np[self.entry_start[mask]]
        self.alpha_entry = alpha
        self.beta_entry = a.beta[self.entry_gm]
        self.gamma_entry = a.gamma[self.entry_gm]
        self.key_row = np.array(
            [0] + [a.key_size_at(p) for p in range(1, length + 1)],
            dtype=np.int64,
        )[self.erow]

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------
    def _package(self, unit_q, unit_i, unit_d):
        """Fold per-entry units into per-row sums in entry-rank order."""
        count = self.row_count
        ranks = self.max_entry_rank
        query = fold_segments(
            self.alpha_entry * unit_q, self.entry_row, self.entry_rank, count, ranks
        )
        insert = fold_segments(
            self.beta_entry * unit_i, self.entry_row, self.entry_rank, count, ranks
        )
        delete = fold_segments(
            self.gamma_entry * unit_d, self.entry_row, self.entry_rank, count, ranks
        )
        return query, insert, delete

    def _storage_walk(self, term) -> np.ndarray:
        """Per-row storage sums via the shared prefix over positions.

        ``term(position)`` returns the ordered scalar storage terms of one
        position; rows sharing a start accumulate the same left fold, so
        the walk extends one running sum per start — the exact partial
        sums of the legacy per-row loops.
        """
        storage = np.zeros(self.row_count)
        by_start: dict[int, list[int]] = {}
        for index, (start, end) in enumerate(self.rows):
            by_start.setdefault(start, []).append(index)
        term_cache: dict[int, list[float]] = {}
        for start, indices in by_start.items():
            indices.sort(key=lambda i: self.rows[i][1])
            running = 0.0
            position = start
            for index in indices:
                end = self.rows[index][1]
                while position <= end:
                    terms = term_cache.get(position)
                    if terms is None:
                        terms = term(position)
                        term_cache[position] = terms
                    for value in terms:
                        running += value
                    position += 1
                storage[index] = running
        return storage

    def _scan_costs(self) -> np.ndarray:
        """``Q[gm, e]``: extent-scan cost of querying member ``gm`` on a
        subpath ending at ``e`` (the no-index and NX-interior formula).
        Stats-only, so it persists in the lowering's table cache."""
        return self.arrays.cached_table("scan", self._build_scan_table)

    def _build_scan_table(self) -> np.ndarray:
        a = self.arrays
        length = a.length
        count = a.member_count
        table = np.zeros((count, length + 1))
        extents = a.extent_pages
        positions = a.member_position
        for end in range(1, length + 1):
            column = table[:, end - 1].copy()
            for gm in range(a.member_offset[end], a.member_offset[end + 1]):
                column = column + extents[gm]
            at_end = positions == end
            column[at_end] = extents[at_end]
            column[positions > end] = 0.0
            table[:, end] = column
        return table

    def evaluate(self, organization: IndexOrganization):
        """Price this batch's rows for one canonical organization.

        The per-entry units (one probe / one insertion / one deletion of
        one hierarchy member) and the per-row CMD rates and storage sums
        are **statistics-only** — the workload enters the cost formulas
        exclusively through the final α/β/γ frequency folds. They are
        therefore memoized per (organization, rows) in the lowering's
        shared table cache, which patched clones carry across workload
        drifts: a warm dirty-slice re-evaluation pays only the three
        frequency folds below.
        """
        method = {
            IndexOrganization.MX: self.mx,
            IndexOrganization.MIX: self.mix,
            IndexOrganization.NIX: self.nix,
            IndexOrganization.PX: self.px,
            IndexOrganization.NX: self.nx,
            IndexOrganization.NONE: self.none,
        }[organization]
        unit_q, unit_i, unit_d, cmd_rate, storage = self.arrays.cached_units(
            (organization, self.rows_key), method
        )
        query, insert, delete = self._package(unit_q, unit_i, unit_d)
        return query, insert, delete, cmd_rate, storage

    # ------------------------------------------------------------------
    # organizations
    # ------------------------------------------------------------------
    def mx(self):
        a = self.arrays
        length = a.length
        count = a.member_count
        shapes = a.cached_table("mx_shapes", self._mx_shapes)
        ends = sorted({int(end) for end in self.erow})
        # C[gm, e]: one probe of member gm's index on a row ending at e
        # (keys[e][e] is the row's probe fan-in, so the ending level and
        # the interior levels share the table).
        table_c = np.zeros((count, length + 1))
        # T[p, e]: the ending + interior levels above a target at p,
        # accumulated in the legacy's level-descending member order.
        table_t = np.zeros((length + 2, length + 1))
        cmd_table = np.zeros(length + 1)
        for end in ends:
            c_col, t_col, cmd = a.cached_table(
                ("mx", end), lambda e=end: self._mx_column(shapes, e)
            )
            table_c[:, end] = c_col
            table_t[:, end] = t_col
            cmd_table[end] = cmd
        unit_q = (
            table_t[self.entry_pos, self.entry_end]
            + table_c[self.entry_gm, self.entry_end]
        )

        inserts, interior = a.cached_table(
            "mx_inserts", lambda: self._mx_inserts(shapes)
        )
        unit_i = inserts[self.entry_gm]
        unit_d = np.where(
            self.entry_pos > self.entry_start,
            interior[self.entry_gm],
            inserts[self.entry_gm],
        )
        cmd_rate = cmd_table[self.erow]

        def storage_terms(position: int) -> list[float]:
            def build() -> list[float]:
                terms = []
                base = a.member_offset[position]
                for offset in range(len(a.members[position])):
                    shape = shapes[base + offset]
                    terms.append(shape.leaf_pages * 1)
                    if shape.oversized:
                        terms.append(shape.record_count * shape.record_pages)
                return terms

            return a.cached_table(("mx_storage", position), build)

        storage = self._storage_walk(storage_terms)
        return unit_q, unit_i, unit_d, cmd_rate, storage

    def _mx_shapes(self) -> list:
        a = self.arrays
        return [
            a.mx_shape(int(a.member_position[gm]), name)
            for gm, name in enumerate(a.member_names)
        ]

    def _mx_column(self, shapes, end: int):
        """One end's (C column, T column, CMD rate) — the exact scalar
        loop of the legacy evaluator, level-descending member order."""
        a = self.arrays
        config = a.config
        c_col = np.zeros(a.member_count)
        t_col = np.zeros(a.length + 2)
        accumulator = 0.0
        for level in range(end, 0, -1):
            base = a.member_offset[level]
            for offset in range(len(a.members[level])):
                gm = base + offset
                value = crt(shapes[gm], a.keys[level][end], config.pr_mx)
                c_col[gm] = value
                accumulator = accumulator + value
            t_col[level - 1] = accumulator
        cmd = 0.0
        base = a.member_offset[end]
        for offset in range(len(a.members[end])):
            shape = shapes[base + offset]
            cmd += cml(shape, float(shape.record_pages))
        return c_col, t_col, cmd

    def _mx_inserts(self, shapes):
        a = self.arrays
        config = a.config
        count = a.member_count
        inserts = np.zeros(count)
        cml_gm = np.zeros(count)
        for gm in range(count):
            inserts[gm] = cmt(shapes[gm], a.nin[gm], config.pm_mx)
            cml_gm[gm] = cml(shapes[gm], config.pm_mx)
        interior = np.zeros(count)
        for gm in range(count):
            position = int(a.member_position[gm])
            total = inserts[gm]
            if position > 1:
                base = a.member_offset[position - 1]
                for offset in range(len(a.members[position - 1])):
                    total = total + cml_gm[base + offset]
            interior[gm] = total
        return inserts, interior

    def mix(self):
        a = self.arrays
        length = a.length
        shapes = a.cached_table("mix_shapes", self._mix_shapes)
        ends = sorted({int(end) for end in self.erow})
        # H[p, e]: levels e down to p, legacy accumulation order.
        table_h = np.zeros((length + 2, length + 1))
        cmd_table = np.zeros(length + 1)
        for end in ends:
            h_col, cmd = a.cached_table(
                ("mix", end), lambda e=end: self._mix_column(shapes, e)
            )
            table_h[:, end] = h_col
            cmd_table[end] = cmd
        unit_q = table_h[self.entry_pos, self.entry_end]

        inserts, interior = a.cached_table(
            "mix_inserts", lambda: self._mix_inserts(shapes)
        )
        unit_i = inserts[self.entry_gm]
        unit_d = np.where(
            self.entry_pos > self.entry_start,
            interior[self.entry_gm],
            inserts[self.entry_gm],
        )
        cmd_rate = cmd_table[self.erow]

        def storage_terms(position: int) -> list[float]:
            def build() -> list[float]:
                shape = shapes[position]
                terms = [shape.leaf_pages]
                if shape.oversized:
                    terms.append(shape.record_count * shape.record_pages)
                return terms

            return a.cached_table(("mix_storage", position), build)

        storage = self._storage_walk(storage_terms)
        return unit_q, unit_i, unit_d, cmd_rate, storage

    def _mix_shapes(self) -> dict:
        a = self.arrays
        return {
            position: a.mix_shape(position)
            for position in range(1, a.length + 1)
        }

    def _mix_column(self, shapes, end: int):
        """One end's (H column, CMD rate), legacy accumulation order."""
        a = self.arrays
        config = a.config
        h_col = np.zeros(a.length + 2)
        accumulator = 0.0
        for level in range(end, 0, -1):
            accumulator = accumulator + crt(
                shapes[level], a.keys[level][end], config.pr_mix
            )
            h_col[level] = accumulator
        shape = shapes[end]
        return h_col, cml(shape, float(shape.record_pages))

    def _mix_inserts(self, shapes):
        a = self.arrays
        config = a.config
        count = a.member_count
        inserts = np.zeros(count)
        for gm in range(count):
            position = int(a.member_position[gm])
            inserts[gm] = cmt(shapes[position], a.nin[gm], config.pm_mix)
        cml_level = np.zeros(a.length + 1)
        for position in range(1, a.length + 1):
            cml_level[position] = cml(shapes[position], config.pm_mix)
        interior = inserts + cml_level[np.maximum(a.member_position - 1, 0)]
        return inserts, interior

    def none(self):
        scans = self._scan_costs()
        unit_q = scans[self.entry_gm, self.entry_end]
        zeros_entries = np.zeros(self.entry_count)
        zeros_rows = np.zeros(self.row_count)
        return unit_q, zeros_entries, zeros_entries, zeros_rows, zeros_rows.copy()

    def nx(self):
        a = self.arrays
        config = a.config
        count = self.row_count
        du_np = np.array(a.distinct_union)
        roots_per_value = np.zeros(count)
        for index, (start, end) in enumerate(self.rows):
            records = a.distinct_union[end]
            if records <= 0:
                continue
            total = 0.0
            base = a.member_offset[start]
            for offset in range(len(a.members[start])):
                gm = base + offset
                total += a.objects[gm] * a.ninbar[gm, end]
            roots_per_value[index] = total / records
        oid = a.sizes.oid_size
        header = a.sizes.record_header_size
        key_sizes = self.key_row
        record_lengths = (
            float(header) + key_sizes.astype(np.float64)
        ) + roots_per_value * oid
        table = ShapeTable.from_params(
            du_np[self.erow], record_lengths, key_sizes, a.sizes
        )
        selector = np.arange(count)
        crt_rows = crt_batch(table, selector, self.probes_row, config.pr_mx)
        scans = self._scan_costs()
        at_start = self.entry_pos == self.entry_start
        unit_q = np.where(
            at_start,
            crt_rows[self.entry_row],
            scans[self.entry_gm, self.entry_end],
        )
        base = cmt_batch(
            table, self.entry_row, self.ninbar_entry, config.pm_mx
        )
        unit_i = base
        roots = np.array(a.total_objects)[self.entry_start]
        root_pages = np.array(
            a.root_extent_pages, dtype=np.float64
        )[self.entry_start]
        candidates = self.ninbar_entry * roots_per_value[self.entry_row]
        revalidation = npa_array(
            np.minimum(candidates, roots), roots, root_pages
        )
        unit_d = np.where(at_start, base, base + revalidation)
        cmd_rate = cml_batch(table, table.record_pages)
        return unit_q, unit_i, unit_d, cmd_rate, table.storage_pages()

    def px(self):
        a = self.arrays
        config = a.config
        count = self.row_count
        # Π max(Σ_j k_i, 1) over the subpath — shared prefix per start.
        instantiations = np.zeros(count)
        by_start: dict[int, list[int]] = {}
        for index, (start, end) in enumerate(self.rows):
            by_start.setdefault(start, []).append(index)
        for start, indices in by_start.items():
            indices.sort(key=lambda i: self.rows[i][1])
            running = 1.0
            position = start
            for index in indices:
                end = self.rows[index][1]
                while position <= end:
                    running = running * max(a.sum_k[position], 1.0)
                    position += 1
                instantiations[index] = running
        oid = a.sizes.oid_size
        header = a.sizes.record_header_size
        key_sizes = self.key_row
        tuple_widths = ((self.erow - self.srow + 1) * oid).astype(np.float64)
        record_lengths = (
            float(header) + key_sizes.astype(np.float64)
        ) + instantiations * tuple_widths
        du_np = np.array(a.distinct_union)
        table = ShapeTable.from_params(
            du_np[self.erow], record_lengths, key_sizes, a.sizes
        )
        selector = np.arange(count)
        crt_rows = crt_batch(table, selector, self.probes_row, config.pr_mx)
        unit_q = crt_rows[self.entry_row]
        unit_i = cmt_batch(
            table, self.entry_row, self.ninbar_entry, config.pm_mx
        )
        cmd_rate = cml_batch(table, table.record_pages)
        return unit_q, unit_i, unit_i, cmd_rate, table.storage_pages()

    def nix(self):
        a = self.arrays
        config = a.config
        sizes = a.sizes
        count = self.row_count
        entries = self.entry_count
        pairs = self.pair_count
        length = a.length
        du_np = np.array(a.distinct_union)
        cde = sizes.class_directory_entry_size
        oid = sizes.oid_size

        # -- primary shape: interleaved (directory, oid-list) fold -----
        entry_sizes = np.array(
            [0.0] + [float(a.nix_entry_size(p)) for p in range(1, length + 1)]
        )
        entry_size = entry_sizes[self.entry_pos]
        records_entry = du_np[self.entry_end]
        incidences = a.objects[self.entry_gm] * self.ninbar_entry
        per_value = np.where(
            records_entry > 0,
            incidences / np.where(records_entry > 0, records_entry, 1.0),
            0.0,
        )
        key_sizes = self.key_row
        base_lengths = (
            float(sizes.record_header_size) + key_sizes.astype(np.float64)
        )
        primary_lengths = fold_segments(
            np.concatenate((np.full(entries, float(cde)), per_value * entry_size)),
            np.concatenate((self.entry_row, self.entry_row)),
            np.concatenate((2 * self.entry_rank, 2 * self.entry_rank + 1)),
            count,
            2 * self.max_entry_rank,
            init=base_lengths,
        )
        primary = ShapeTable.from_params(
            du_np[self.erow], primary_lengths, key_sizes, sizes
        )

        # -- auxiliary shape: 3-tuples of the non-starting classes -----
        interior = self.entry_pos > self.entry_start
        parents_of = np.array(
            [0.0, 0.0] + [a.sum_k[p - 1] for p in range(2, length + 1)]
        )
        head = float(sizes.record_header_size + oid)
        tuple_lengths = (
            head + self.ninbar_entry * sizes.pointer_size
        ) + parents_of[self.entry_pos] * oid
        aux_rank = self.entry_rank - self.m_counts[self.srow][self.entry_row]
        counts = a.objects[self.entry_gm]
        aux_total = fold_segments(
            counts[interior],
            self.entry_row[interior],
            aux_rank[interior],
            count,
            self.max_entry_rank,
        )
        aux_weighted = fold_segments(
            (counts * tuple_lengths)[interior],
            self.entry_row[interior],
            aux_rank[interior],
            count,
            self.max_entry_rank,
        )
        has_aux = aux_total != 0.0
        aux_lengths = np.where(
            has_aux, aux_weighted / np.where(has_aux, aux_total, 1.0), 0.0
        )
        auxiliary = ShapeTable.from_params(
            np.where(has_aux, aux_total, 0.0),
            aux_lengths,
            np.full(count, oid, dtype=np.int64),
            sizes,
        )

        # -- retrieval: partial record reads through the directory -----
        # The probe count is row-constant, so the structural descent runs
        # once per row; only the oversized correction term ``t · pr``
        # varies per entry. ``pr = 0`` makes crt_batch return the bare
        # structural sum (`+ t·0.0` leaves the bits unchanged).
        selector = np.arange(count)
        t_row = np.minimum(self.probes_row, primary.record_count)
        active_row = ~primary.empty & (t_row > 0.0)
        over_row = primary.oversized & active_row
        structural_q = crt_batch(primary, selector, self.probes_row, 0.0)
        if config.pr_nix is not None:
            partial_pr = np.full(entries, float(config.pr_nix))
        else:
            nc_np = np.array(a.nc, dtype=np.float64)
            share = cde * nc_np[self.entry_pos] + per_value * entry_size
            pages = 1.0 + np.ceil(share / float(sizes.page_size))
            partial_pr = np.minimum(pages, primary.record_pages[self.entry_row])
        unit_q = structural_q[self.entry_row] + np.where(
            over_row[self.entry_row],
            t_row[self.entry_row] * partial_pr,
            0.0,
        )

        # -- insertion: CSI3 + CSI24 -----------------------------------
        primary_insert = cmt_batch(
            primary, self.entry_row, self.ninbar_entry, config.pmi_nix
        )
        own = np.where(interior, 1.0, 0.0)
        nar = a.occupied_next[self.entry_gm]
        crt_children = crt_batch(auxiliary, self.entry_row, self.nin_entry, 1.0)
        crr_rewrite = crr_batch(
            auxiliary, self.entry_row, nar + own, config.pm_ax
        )
        # One own tuple per deletion/insertion at the ending class: the
        # record count is 1 for every entry, so this too is row-level.
        own_tuple = cmt_batch(
            auxiliary, selector, np.ones(count), config.pm_ax
        )[self.entry_row]
        before_end = self.entry_pos < self.entry_end
        aux_insert = np.where(
            before_end,
            crt_children + crr_rewrite,
            np.where(interior, own_tuple, 0.0),
        )
        unit_i = primary_insert + aux_insert

        # -- deletion: CSD2 + CS3a + CU3bc + min(SA1, SA2) -------------
        crt_delete = crt_batch(
            auxiliary, self.entry_row, self.nin_entry + own, 1.0
        )
        csd2 = np.where(
            before_end,
            crt_delete + crr_rewrite,
            np.where(interior, own_tuple, 0.0),
        )
        cs3a = cmt_batch(
            primary, self.entry_row, self.ninbar_entry, config.pmd_nix
        )
        chain_len = np.maximum(self.pair_pos - self.srow[self.pair_row] - 1, 0)
        chain_total = int(chain_len.sum())
        cu3bc = np.zeros(pairs)
        parents_total = np.zeros(pairs)
        narp_total = np.zeros(pairs)
        if chain_total:
            chain_pair = np.repeat(np.arange(pairs), chain_len)
            chain_offsets = np.concatenate(([0], np.cumsum(chain_len)[:-1]))
            chain_rank = np.arange(chain_total) - chain_offsets[chain_pair]
            chain_level = self.pair_pos[chain_pair] - 1 - chain_rank
            parents_np = np.array(a.parents)
            narp_np = np.array(a.narp)
            chain_position = self.pair_pos[chain_pair]
            parents_chain = parents_np[chain_position, chain_level]
            narp_chain = narp_np[chain_position, chain_level]
            rewrites = crr_batch(
                auxiliary, self.pair_row[chain_pair], narp_chain, config.pm_ax
            )
            max_chain = int(chain_len.max())
            cu3bc = fold_segments(
                rewrites, chain_pair, chain_rank, pairs, max_chain
            )
            parents_total = fold_segments(
                parents_chain, chain_pair, chain_rank, pairs, max_chain
            )
            narp_total = fold_segments(
                narp_chain, chain_pair, chain_rank, pairs, max_chain
            )
        retrieval = np.zeros(pairs)
        pair_leaf_records = auxiliary.leaf_records[self.pair_row]
        pair_leaf_pages = auxiliary.leaf_pages[self.pair_row]
        active = (parents_total > 0) & ~auxiliary.empty[self.pair_row]
        if active.any():
            records = pair_leaf_records[active]
            pages = pair_leaf_pages[active]
            sa1 = npa_array(
                np.minimum(parents_total[active], records), records, pages
            )
            oversized = auxiliary.oversized[self.pair_row][active]
            sa2 = np.where(
                oversized,
                narp_total[active],
                npa_array(
                    np.minimum(narp_total[active], records), records, pages
                ),
            )
            retrieval[active] = np.minimum(sa1, sa2)
        unit_d = (
            (csd2 + cs3a) + cu3bc[self.entry_pair]
        ) + retrieval[self.entry_pair]

        # -- CMD: whole-record removal plus the delpoint rewrites ------
        cml_primary = cml_batch(primary, primary.record_pages)
        pair_interior = self.pair_pos > self.srow[self.pair_row]
        touched = np.zeros(count)
        if pair_interior.any():
            subtotal_np = np.array(a.nix_subtotal)
            subtotal = subtotal_np[
                self.pair_pos[pair_interior],
                self.erow[self.pair_row[pair_interior]],
            ]
            delpoint_rank = (
                self.pair_pos - self.srow[self.pair_row] - 1
            )[pair_interior]
            touched = fold_segments(
                subtotal,
                self.pair_row[pair_interior],
                delpoint_rank,
                count,
                int(delpoint_rank.max()) + 1,
            )
        delpoint = np.zeros(count)
        occupied = ~auxiliary.empty
        if occupied.any():
            records = auxiliary.leaf_records[occupied]
            pages = auxiliary.leaf_pages[occupied]
            delpoint[occupied] = 2.0 * npa_array(
                np.minimum(touched[occupied], records), records, pages
            )
        cmd_rate = cml_primary + delpoint

        primary_storage = primary.storage_pages()
        with_aux = (primary_storage + auxiliary.leaf_pages) + np.where(
            auxiliary.oversized,
            auxiliary.record_count * auxiliary.record_pages,
            0.0,
        )
        storage = np.where(auxiliary.empty, primary_storage, with_aux)
        return unit_q, unit_i, unit_d, cmd_rate, storage
