"""End-to-end incremental what-if: sessions over the advisor pipeline.

The paper's advisor is a one-shot pipeline; this package makes it
conversational. An :class:`AdvisorSession` owns ``(stats, load, matrix,
search tables)`` for one path and answers perturbation queries
(:meth:`~AdvisorSession.apply` / :meth:`~AdvisorSession.advise`)
incrementally at every layer — matrix rows via exact dirty-row
recomputation (with O(1) ``CMD`` patches for delete-frequency deltas),
search via the refinable ``incremental_dynamic_program`` strategy, and
joint multi-path selection via per-session candidate caching
(:class:`MultiPathSession`). :class:`Perturbation` is the declarative
delta format shared by the Python API, the CLI ``whatif`` subcommand and
the drifting-workload benchmark.

Quickstart::

    from repro.whatif import AdvisorSession, Perturbation

    session = AdvisorSession(stats, load)
    baseline = session.advise()
    session.perturb(Perturbation.parse("Division:delete*2"))
    updated = session.advise()          # == a from-scratch advise, faster
"""

from repro.whatif.perturbation import (
    LOAD_COMPONENTS,
    STATS_COMPONENTS,
    Perturbation,
    parse_steps,
)
from repro.whatif.session import (
    DEFAULT_SESSION_STRATEGY,
    AdvisorSession,
    MultiPathSession,
    WhatIfStep,
)

__all__ = [
    "AdvisorSession",
    "DEFAULT_SESSION_STRATEGY",
    "LOAD_COMPONENTS",
    "MultiPathSession",
    "Perturbation",
    "STATS_COMPONENTS",
    "WhatIfStep",
    "parse_steps",
]
