"""Declarative perturbations over statistics and workloads.

A what-if question is a small delta against the current inputs: "what if
``Division`` deletions doubled?", "what if the ending class grew to a
million objects?". A :class:`Perturbation` captures one such delta in a
form that can be parsed from the CLI (``Class:component*factor`` /
``Class:component=value``), from a JSON step document, or constructed
directly — and applied to an immutable ``(stats, load)`` pair to produce
the perturbed inputs an :class:`~repro.whatif.AdvisorSession` consumes.

Load components (``query``/``insert``/``delete``) rebuild the
:class:`~repro.workload.load.LoadDistribution` with one triplet replaced;
stats components (``objects``/``distinct``/``fanout``) rebuild the
:class:`~repro.costmodel.params.PathStatistics` with one
:class:`~repro.costmodel.params.ClassStats` replaced. Both constructions
go through the normal validating constructors, so a perturbation can
never produce inputs the cost model would reject at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.costmodel.params import ClassStats, PathStatistics
from repro.errors import OptimizerError
from repro.workload.load import LoadDistribution, LoadTriplet

#: Components that perturb the workload triplet of a class.
LOAD_COMPONENTS = ("query", "insert", "delete")

#: Components that perturb the class statistics of a class.
STATS_COMPONENTS = ("objects", "distinct", "fanout")


@dataclass(frozen=True)
class Perturbation:
    """One atomic what-if delta: a class, a component, and a change.

    ``mode`` is ``"scale"`` (multiply the current value by ``value``) or
    ``"set"`` (replace it). The component determines whether the workload
    or the statistics change; :attr:`kind` reports which.
    """

    class_name: str
    component: str
    mode: str
    value: float

    def __post_init__(self) -> None:
        if self.component not in LOAD_COMPONENTS + STATS_COMPONENTS:
            raise OptimizerError(
                f"unknown perturbation component {self.component!r} "
                f"(load: {', '.join(LOAD_COMPONENTS)}; "
                f"stats: {', '.join(STATS_COMPONENTS)})"
            )
        if self.mode not in ("scale", "set"):
            raise OptimizerError(
                f"perturbation mode must be 'scale' or 'set', got {self.mode!r}"
            )
        if not self.value >= 0:
            raise OptimizerError(
                f"perturbation value must be a non-negative number, got "
                f"{self.value}"
            )

    @property
    def kind(self) -> str:
        """``"load"`` or ``"stats"``."""
        return "load" if self.component in LOAD_COMPONENTS else "stats"

    def describe(self) -> str:
        """Compact human-readable form (also the CLI flag syntax)."""
        operator = "*" if self.mode == "scale" else "="
        return f"{self.class_name}:{self.component}{operator}{self.value:g}"

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(
        self, stats: PathStatistics, load: LoadDistribution
    ) -> tuple[PathStatistics, LoadDistribution]:
        """The perturbed ``(stats, load)`` pair (inputs are immutable).

        Exactly one of the two objects is replaced; the other is returned
        unchanged (by identity), which is what lets
        :meth:`~repro.core.cost_matrix.CostMatrix.recompute` skip its
        dirty analysis for the untouched side.
        """
        if self.kind == "load":
            current = load.triplet(self.class_name)  # validates the class
            values = {
                "query": current.query,
                "insert": current.insert,
                "delete": current.delete,
            }
            values[self.component] = self._updated(values[self.component])
            triplets = {name: triplet for name, triplet in load.items()}
            triplets[self.class_name] = LoadTriplet(**values)
            return stats, LoadDistribution(load.path, triplets)
        current_stats = stats.stats_of(self.class_name)  # validates the class
        fields = {
            "objects": current_stats.objects,
            "distinct": current_stats.distinct,
            "fanout": current_stats.fanout,
        }
        fields[self.component] = self._updated(fields[self.component])
        per_class = {
            member: stats.stats_of(member)
            for position in range(1, stats.length + 1)
            for member in stats.members(position)
        }
        per_class[self.class_name] = ClassStats(**fields)
        return PathStatistics(stats.path, per_class, stats.config), load

    def _updated(self, current: float) -> float:
        return current * self.value if self.mode == "scale" else self.value

    # ------------------------------------------------------------------
    # parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Perturbation":
        """Parse the flag syntax ``Class:component*factor`` / ``=value``."""
        head, separator, tail = text.partition(":")
        if not separator or not head:
            raise OptimizerError(
                f"cannot parse perturbation {text!r}: expected "
                f"'Class:component*factor' or 'Class:component=value'"
            )
        for operator, mode in (("*", "scale"), ("=", "set")):
            component, found, raw = tail.partition(operator)
            if found:
                try:
                    value = float(raw)
                except ValueError:
                    raise OptimizerError(
                        f"cannot parse perturbation value {raw!r} in {text!r}"
                    ) from None
                return cls(
                    class_name=head, component=component, mode=mode, value=value
                )
        raise OptimizerError(
            f"cannot parse perturbation {text!r}: missing '*' or '='"
        )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Perturbation":
        """Parse one JSON step: ``{"class", "component", "scale"|"set"}``."""
        if not isinstance(data, dict):
            raise OptimizerError(
                f"perturbation step must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"class", "component", "scale", "set"}
        if unknown:
            raise OptimizerError(
                f"unknown perturbation keys: {sorted(unknown)}"
            )
        try:
            class_name = data["class"]
            component = data["component"]
        except KeyError as error:
            raise OptimizerError(
                f"perturbation step missing required key {error}"
            ) from None
        has_scale = "scale" in data
        has_set = "set" in data
        if has_scale == has_set:
            raise OptimizerError(
                "perturbation step needs exactly one of 'scale' or 'set'"
            )
        mode = "scale" if has_scale else "set"
        raw = data[mode]
        try:
            value = float(raw)
        except (TypeError, ValueError):
            raise OptimizerError(
                f"perturbation {mode!r} value must be a number, got {raw!r}"
            ) from None
        return cls(
            class_name=class_name,
            component=component,
            mode=mode,
            value=value,
        )

    def to_dict(self) -> dict[str, Any]:
        """The JSON step form accepted by :meth:`from_dict`."""
        return {
            "class": self.class_name,
            "component": self.component,
            self.mode: self.value,
        }


def perturbations_between(
    old_stats: PathStatistics,
    old_load: LoadDistribution,
    new_stats: PathStatistics,
    new_load: LoadDistribution,
) -> list[Perturbation]:
    """The ``set``-mode perturbations turning one input pair into another.

    Compares the two pairs component by component (per scope class:
    query/insert/delete frequencies and objects/distinct/fanout
    statistics) and emits one ``set`` perturbation per difference —
    classes in scope order, per-class component order chosen so every
    intermediate single-field state passes the validating constructors —
    so ``apply``-ing the returned list to ``(old_stats, old_load)``
    reproduces ``(new_stats, new_load)`` value for value.
    This is how the trace layer turns a windowed workload estimate into
    a batch for :meth:`~repro.whatif.AdvisorSession.apply_many`. Both
    pairs must describe the same path.
    """
    if str(old_stats.path) != str(new_stats.path):
        raise OptimizerError(
            f"cannot diff statistics of different paths "
            f"({old_stats.path} vs {new_stats.path})"
        )
    deltas: list[Perturbation] = []
    if new_load is not old_load:
        for name, triplet in new_load.items():
            old_triplet = old_load.triplet(name)
            for component in LOAD_COMPONENTS:
                value = getattr(triplet, component)
                if value != getattr(old_triplet, component):
                    deltas.append(
                        Perturbation(
                            class_name=name,
                            component=component,
                            mode="set",
                            value=value,
                        )
                    )
    if new_stats is not old_stats:
        for position in range(1, new_stats.length + 1):
            for member in new_stats.members(position):
                current = new_stats.stats_of(member)
                previous = old_stats.stats_of(member)
                diffs = {
                    component: getattr(current, component)
                    for component in STATS_COMPONENTS
                    if getattr(current, component) != getattr(previous, component)
                }
                if not diffs:
                    continue
                # Each set replaces one field through the validating
                # ClassStats constructor, so the emission order must keep
                # every intermediate state legal: grow the capacity bound
                # (fanout, objects) first, move distinct while capacity
                # is maximal, shrink capacity last.
                order = [
                    component
                    for component in ("fanout", "objects")
                    if component in diffs
                    and diffs[component] > getattr(previous, component)
                ]
                if "distinct" in diffs:
                    order.append("distinct")
                order.extend(
                    component
                    for component in ("objects", "fanout")
                    if component in diffs
                    and diffs[component] < getattr(previous, component)
                )
                deltas.extend(
                    Perturbation(
                        class_name=member,
                        component=component,
                        mode="set",
                        value=diffs[component],
                    )
                    for component in order
                )
    return deltas


def parse_steps(document: Any) -> list[Perturbation]:
    """Parse a perturbation-sequence document (the CLI ``--steps`` file).

    Accepts either a bare JSON list of step objects or ``{"steps": [...]}``.
    """
    if isinstance(document, dict):
        if set(document) != {"steps"}:
            raise OptimizerError(
                "perturbation document must be a list of steps or "
                '{"steps": [...]}'
            )
        document = document["steps"]
    if not isinstance(document, list):
        raise OptimizerError(
            f"perturbation steps must be a list, got {type(document).__name__}"
        )
    return [Perturbation.from_dict(step) for step in document]
