"""Stateful what-if sessions: incremental at every pipeline layer.

The one-shot pipeline (``Cost_Matrix`` → ``Min_Cost`` → search) answers a
single question. An administrator — or an online advisor tracking a
drifting workload — asks thousands, each differing from the last by a
small delta. An :class:`AdvisorSession` owns the full pipeline state for
one path (statistics, workload, cost matrix, search tables) and threads
the *exact dirty-row set* of every perturbation through all of it:

* the matrix layer re-prices only the rows the delta can reach
  (:meth:`~repro.core.cost_matrix.CostMatrix.recompute`, with
  delete-frequency deltas reduced to O(1) per-row ``CMD`` patches);
* the search layer re-relaxes only the DP positions those rows can
  reach (``incremental_dynamic_program``'s
  :meth:`~repro.search.dynamic_program.IncrementalDynamicProgramStrategy.refine`);
* the multi-path layer regenerates k-best candidates only for paths
  whose sessions report dirty rows
  (:func:`~repro.core.multipath.optimize_multipath` with ``sessions=``,
  orchestrated by :class:`MultiPathSession`).

Every answer is bit-identical to rerunning the whole pipeline from
scratch on the current inputs — the Hypothesis property in
``tests/test_whatif_session.py`` pins ``(cost, configuration)`` equality
for arbitrary supported perturbation sequences under every registered
exact strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost_matrix import CostMatrix, RecomputeReport
from repro.core.multipath import MultiPathResult, PathWorkload, optimize_multipath
from repro.costmodel.params import PathStatistics
from repro.errors import DeadlineExceeded, OptimizerError
from repro.obs.recorder import resolve_recorder
from repro.organizations import CONFIGURABLE_ORGANIZATIONS, IndexOrganization
from repro.resilience.degradation import DegradationReport
from repro.resilience.degrade import degraded_search
from repro.search import SearchResult, get_strategy
from repro.whatif.perturbation import Perturbation
from repro.workload.load import LoadDistribution

#: The session default: the search layer that can consume dirty sets.
DEFAULT_SESSION_STRATEGY = "incremental_dynamic_program"


@dataclass(frozen=True)
class WhatIfStep:
    """The outcome of one perturbation step, for reports and tables.

    ``report`` is ``None`` for the baseline step (nothing was applied
    yet); ``configuration_changed`` compares against the previous step's
    selected configuration.
    """

    index: int
    description: str
    result: SearchResult
    report: RecomputeReport | None = None
    configuration_changed: bool = False

    @property
    def cost(self) -> float:
        """The selected configuration's processing cost after the step."""
        return self.result.cost


class AdvisorSession:
    """Incremental what-if advisor state for one path.

    Parameters mirror :func:`~repro.core.advisor.advise` where they
    overlap; ``strategy`` defaults to ``incremental_dynamic_program`` so
    repeated :meth:`advise` calls consume dirty-row sets instead of
    re-searching from scratch (any registered strategy works — those
    without a ``refine`` method are simply re-run against the
    incrementally updated matrix). ``workers`` applies to the initial
    matrix construction and, by default, to every recompute (dirty sets
    are small, so ``0``/serial is the right default). ``kernel`` selects
    the matrix evaluation engine (see :meth:`CostMatrix.compute`) for the
    initial build and sticks for every recompute — ``"auto"`` (default)
    builds the full matrix through the columnar numpy kernel when
    available and re-prices small dirty sets through the legacy
    evaluator, bit-identically either way.

    The session's observable guarantees:

    * :attr:`matrix`, :attr:`stats` and :attr:`load` always describe the
      inputs after every :meth:`apply` so far;
    * :meth:`advise` returns exactly what a fresh
      ``get_strategy(strategy).search(CostMatrix.compute(stats, load))``
      would return on the current inputs — bit-identical cost and
      configuration;
    * :attr:`version` increments whenever an :meth:`apply` actually
      touched matrix rows, which is what the multi-path candidate cache
      keys on.
    """

    def __init__(
        self,
        stats: PathStatistics,
        load: LoadDistribution,
        *,
        organizations: tuple[IndexOrganization, ...] = CONFIGURABLE_ORGANIZATIONS,
        include_noindex: bool = False,
        range_selectivity: float | None = None,
        strategy: str = DEFAULT_SESSION_STRATEGY,
        workers: int | None = 0,
        kernel: str = "auto",
        degradation: DegradationReport | None = None,
        retry_policy=None,
        recorder=None,
        **strategy_options,
    ) -> None:
        # Resolve the strategy first: a bad name or option must fail
        # before the expensive matrix construction (advise's convention).
        self._searcher = get_strategy(strategy, **strategy_options)
        self.strategy = strategy
        self.stats = stats
        self.load = load
        self._workers = workers
        self._kernel = kernel
        #: Every fallback this session (and its matrix updates) takes is
        #: recorded here; pass a shared report to aggregate across
        #: sessions (ContinuousAdvisor does).
        self.degradation = (
            degradation if degradation is not None else DegradationReport()
        )
        self._retry_policy = retry_policy
        #: Tracing spans and metrics for every session operation; a
        #: :class:`~repro.obs.Recorder` shared across sessions profiles
        #: them into one timeline (ContinuousAdvisor does).
        self.recorder = resolve_recorder(recorder)
        self.matrix = CostMatrix.compute(
            stats,
            load,
            organizations=organizations,
            include_noindex=include_noindex,
            range_selectivity=range_selectivity,
            workers=workers,
            kernel=kernel,
            retry_policy=retry_policy,
            degradation=self.degradation,
            recorder=self.recorder,
        )
        #: Monotone counter of applies that touched matrix rows.
        self.version = 0
        #: Per-descriptor candidate cache managed by
        #: :func:`~repro.core.multipath.optimize_multipath` (sessions=).
        self.candidate_cache: dict = {}
        self.applied_steps = 0
        #: Number of :meth:`apply_many` batches folded so far.
        self.batched_steps = 0
        self._pending: set[tuple[int, int]] = set()
        self._pending_full = False
        self._result: SearchResult | None = None

    # ------------------------------------------------------------------
    # perturbation
    # ------------------------------------------------------------------
    def apply(
        self,
        stats: PathStatistics | None = None,
        load: LoadDistribution | None = None,
        *,
        workers: int | None = None,
    ) -> RecomputeReport:
        """Replace the session inputs and incrementally update the matrix.

        ``stats``/``load`` follow :meth:`CostMatrix.recompute` semantics
        (``None`` keeps the current object; both describe the same path).
        Returns the :class:`~repro.core.cost_matrix.RecomputeReport` of
        the underlying matrix update, so callers can assert how much work
        the step actually did.
        """
        if stats is None and load is None:
            raise OptimizerError(
                "apply requires new statistics, a new load, or both"
            )
        with self.recorder.span("session.apply"):
            self.matrix = self.matrix.recompute(
                stats=stats,
                load=load,
                workers=self._workers if workers is None else workers,
                retry_policy=self._retry_policy,
                degradation=self.degradation,
                recorder=self.recorder,
            )
        self.recorder.counter("whatif.applied_steps").add()
        report = self.matrix.recompute_report
        if stats is not None:
            self.stats = stats
        if load is not None:
            self.load = load
        if report.mode == "full":
            self._pending_full = True
            self._pending.clear()
            self.version += 1
        elif report.dirty_count:
            self._pending.update(report.recomputed_rows)
            self._pending.update(report.patched_rows)
            self.version += 1
        self.applied_steps += 1
        return report

    def perturb(self, perturbation: Perturbation) -> RecomputeReport:
        """Apply one declarative :class:`Perturbation` to the session."""
        new_stats, new_load = perturbation.apply(self.stats, self.load)
        return self.apply(
            stats=None if new_stats is self.stats else new_stats,
            load=None if new_load is self.load else new_load,
        )

    def apply_many(
        self,
        perturbations: list[Perturbation],
        *,
        workers: int | None = None,
    ) -> RecomputeReport:
        """Apply a whole perturbation batch with **one** matrix recompute.

        The perturbations are folded into a single ``(stats, load)``
        delta first, so the recompute's dirty analysis sees the *union*
        of their row reaches and prices every touched row exactly once —
        a bursty drift stream pays one array assembly and one search
        refinement per batch instead of one per event. The resulting
        session state (and therefore every subsequent :meth:`advise`)
        is bit-identical to applying the same perturbations one by one.
        """
        items = list(perturbations)
        if not items:
            raise OptimizerError(
                "apply_many requires at least one perturbation"
            )
        with self.recorder.span("session.apply_many", batch=len(items)):
            stats, load = self.stats, self.load
            for perturbation in items:
                stats, load = perturbation.apply(stats, load)
            self.batched_steps += 1
            self.recorder.counter("whatif.batched_steps").add()
            return self.apply(
                stats=None if stats is self.stats else stats,
                load=None if load is self.load else load,
                workers=workers,
            )

    # ------------------------------------------------------------------
    # answering
    # ------------------------------------------------------------------
    def advise(
        self, *, keep_trace: bool = False, deadline=None
    ) -> SearchResult:
        """The optimal configuration for the current inputs.

        Incremental at the search layer: with no pending dirty rows the
        last result is returned as-is; with a dirty set and a strategy
        that supports ``refine`` only the reachable DP positions are
        re-relaxed; otherwise the strategy re-runs against the (already
        incrementally updated) matrix.

        ``deadline`` (a :class:`~repro.resilience.Deadline`) bounds the
        answer's latency: the exact rung runs under cooperative deadline
        checks, and on expiry the session degrades along the explicit
        ladder — ``greedy_beam`` with shrinking widths, then the
        last-known-good configuration re-priced against the current
        matrix (see :mod:`repro.resilience.degrade`). A degraded answer
        carries ``extras["rung"]``/``extras["degraded"]``, is recorded in
        :attr:`degradation`, and does **not** replace the session's exact
        state: the dirty set stays pending, so the next unbounded
        :meth:`advise` recovers exactness. Without a deadline the
        behaviour (and the bit-identical-to-fresh guarantee) is
        unchanged.
        """
        search_options: dict = {"keep_trace": keep_trace}
        if deadline is not None:
            search_options["deadline"] = deadline
        if self.recorder.enabled:
            # Only forwarded when recording: third-party strategies
            # registered before this keyword existed keep working.
            search_options["recorder"] = self.recorder
        with self.recorder.span(
            "session.advise", dirty=len(self._pending)
        ):
            if (
                self._result is not None
                and not self._pending
                and not self._pending_full
            ):
                if keep_trace and not self._result.trace:
                    # The cached answer was produced without a trace;
                    # honor the request with a full (trace-keeping)
                    # search.
                    try:
                        self._result = self._searcher.search(
                            self.matrix, **search_options
                        )
                    except DeadlineExceeded as error:
                        self.degradation.record(
                            "session",
                            "trace_search_abandoned",
                            "deadline_expired",
                            strategy=self.strategy,
                            message=str(error),
                        )
                else:
                    self.recorder.counter("whatif.advise_cache_hits").add()
                return self._result
            try:
                if (
                    self._result is not None
                    and not self._pending_full
                    and hasattr(self._searcher, "refine")
                ):
                    result = self._searcher.refine(
                        self.matrix, frozenset(self._pending), **search_options
                    )
                else:
                    result = self._searcher.search(
                        self.matrix, **search_options
                    )
            except DeadlineExceeded as error:
                self.degradation.record(
                    "session",
                    "exact_abandoned",
                    "deadline_expired",
                    strategy=self.strategy,
                    message=str(error),
                )
                return degraded_search(
                    self.matrix,
                    deadline=deadline,
                    last_known_good=self._result,
                    degradation=self.degradation,
                    keep_trace=keep_trace,
                    layer="session",
                    recorder=self.recorder,
                )
            self._pending.clear()
            self._pending_full = False
            self._result = result
            return result

    def run(self, perturbations: list[Perturbation]) -> list[WhatIfStep]:
        """Drive a perturbation sequence, one :class:`WhatIfStep` each.

        Step 0 is the baseline (current inputs, nothing applied); steps
        ``1..n`` each apply one perturbation and re-advise.
        """
        baseline = self.advise()
        steps = [WhatIfStep(index=0, description="baseline", result=baseline)]
        previous = baseline.configuration
        for index, perturbation in enumerate(perturbations, start=1):
            report = self.perturb(perturbation)
            result = self.advise()
            steps.append(
                WhatIfStep(
                    index=index,
                    description=perturbation.describe(),
                    result=result,
                    report=report,
                    configuration_changed=result.configuration != previous,
                )
            )
            previous = result.configuration
        return steps


class MultiPathSession:
    """Joint what-if state over several paths.

    Owns one :class:`AdvisorSession` per path and answers
    :meth:`optimize` through
    :func:`~repro.core.multipath.optimize_multipath`'s ``sessions=``
    seam: per-path k-best candidate sets are cached on the sessions and
    regenerated only for paths whose dirty sets changed, and when *no*
    session changed since the last call with the same options the cached
    :class:`~repro.core.multipath.MultiPathResult` is returned without
    re-running joint selection at all.
    """

    def __init__(
        self, sessions: list[AdvisorSession], *, recorder=None
    ) -> None:
        if not sessions:
            raise OptimizerError("at least one session is required")
        self.sessions = list(sessions)
        #: Tracing spans and metrics for the joint layer; per-path work
        #: is recorded by each session's own recorder (pass the same
        #: instance everywhere for one merged timeline).
        self.recorder = resolve_recorder(recorder)
        self._last: tuple[tuple, tuple[int, ...], MultiPathResult] | None = None
        # Joint-selection reuse state shared with optimize_multipath: the
        # last descent-regime selection plus the "reuses" counter that
        # tests assert on (see optimize_multipath's joint_cache=).
        self._joint_cache: dict = {}

    @classmethod
    def from_workloads(
        cls, workloads: list[PathWorkload], **session_options
    ) -> "MultiPathSession":
        """Build one session per :class:`PathWorkload`.

        A ``recorder`` among the options is shared: every path session
        and the joint layer record into the same timeline.
        """
        return cls(
            [
                AdvisorSession(workload.stats, workload.load, **session_options)
                for workload in workloads
            ],
            recorder=session_options.get("recorder"),
        )

    def apply(
        self,
        index: int,
        stats: PathStatistics | None = None,
        load: LoadDistribution | None = None,
    ) -> RecomputeReport:
        """Perturb the inputs of path ``index``."""
        return self.sessions[index].apply(stats=stats, load=load)

    def perturb(self, index: int, perturbation: Perturbation) -> RecomputeReport:
        """Apply one declarative perturbation to path ``index``."""
        return self.sessions[index].perturb(perturbation)

    def apply_many(
        self, perturbations: dict[int, list[Perturbation]]
    ) -> dict[int, RecomputeReport]:
        """Batched perturbations per path, one recompute per touched path.

        ``perturbations`` maps path indexes to perturbation batches; each
        batch goes through the path session's
        :meth:`AdvisorSession.apply_many` (one dirty-set-union recompute
        per path), and untouched paths do no work at all.
        """
        reports: dict[int, RecomputeReport] = {}
        for index, batch in perturbations.items():
            if not 0 <= index < len(self.sessions):
                raise OptimizerError(
                    f"path index {index} out of range for "
                    f"{len(self.sessions)} sessions"
                )
            reports[index] = self.sessions[index].apply_many(batch)
        return reports

    @property
    def joint_reuses(self) -> int:
        """How many :meth:`optimize` calls reused the cached joint selection.

        Counts the descent-regime answers where the previously selected
        configurations were still a local optimum of the regenerated
        candidate sets, so the multi-start coordinate descent was skipped
        entirely (see :func:`~repro.core.multipath.optimize_multipath`'s
        ``joint_cache``). The incrementality assertion for tests — a
        counter, not a timing.
        """
        return self._joint_cache.get("reuses", 0)

    def optimize(self, **options) -> MultiPathResult:
        """Joint selection over the current inputs of every path.

        Keyword options are forwarded to
        :func:`~repro.core.multipath.optimize_multipath` (``beam_width``,
        ``budget_pages``, ``restarts``, ...). Two layers of reuse apply:
        identical questions (same options, no session version moved)
        return the cached :class:`MultiPathResult` outright, and
        descent-regime joint selections are reused — re-priced against
        the fresh candidate sets — when they remain locally optimal
        (:attr:`joint_reuses` counts those).
        """
        # A deadline-bounded call may answer degraded; such results are
        # neither served from nor stored into the identical-question
        # cache, so an unbounded follow-up always recomputes exactly.
        bounded = options.get("deadline") is not None
        key = tuple(sorted(options.items()))
        versions = tuple(session.version for session in self.sessions)
        if not bounded and self._last is not None:
            last_key, last_versions, last_result = self._last
            if last_key == key and last_versions == versions:
                self.recorder.counter("whatif.optimize_cache_hits").add()
                return last_result
        result = optimize_multipath(
            sessions=self.sessions,
            joint_cache=self._joint_cache,
            recorder=self.recorder,
            **options,
        )
        if not bounded:
            self._last = (key, versions, result)
        return result
