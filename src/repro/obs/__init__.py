"""Unified observability: tracing spans, metrics, profile exporters.

The instrumentation subsystem every pipeline layer reports into. An
explicit :class:`Recorder` threads through ``advise`` →
``CostMatrix.compute/recompute`` → the search strategies →
``optimize_multipath`` → the what-if sessions → ``ContinuousAdvisor`` →
``backend.replay_trace``; with the default :data:`NULL_RECORDER`
everything is a no-op (≤2 % overhead on the bench_kernel smoke path,
guarded by ``benchmarks/bench_obs.py`` in CI). Parallel matrix builds
merge worker span trees and metric deltas into one profile, and
:mod:`repro.obs.export` writes it as a Perfetto-loadable Chrome trace,
a JSON metrics snapshot, or a plain-text table (CLI ``--profile`` /
``--stats``). Span taxonomy and metric names: ``docs/OBSERVABILITY.md``.
"""

from repro.obs.clock import Clock, default_clock
from repro.obs.export import (
    chrome_trace_events,
    dumps_profile,
    profile_document,
    stats_table,
    write_profile,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    resolve_recorder,
)

__all__ = [
    "Clock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "chrome_trace_events",
    "default_clock",
    "dumps_profile",
    "metric_key",
    "profile_document",
    "resolve_recorder",
    "stats_table",
    "write_profile",
]
