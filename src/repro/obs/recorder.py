"""Hierarchical span recording with a zero-overhead disabled mode.

Two recorder types share one duck-typed surface:

* :class:`Recorder` — the real thing: ``span(name)`` context managers
  push/pop a depth stack and append ``(name, ts, dur, tid, depth,
  args)`` records; ``counter``/``gauge``/``histogram`` delegate to an
  owned :class:`~repro.obs.metrics.MetricsRegistry`; ``absorb`` merges a
  worker's serialized profile under a distinct ``tid``.
* :class:`NullRecorder` — the default everywhere: every method returns a
  shared singleton whose operations are no-ops, so instrumented call
  sites cost one attribute lookup and one call when recording is off
  (the ≤2 % bench_kernel smoke-path budget guarded by
  ``benchmarks/bench_obs.py``).

Instrumentation is deliberately coarse: spans wrap whole phases (a
matrix build, a search, a replay window), never per-row or per-event
work, and hot loops bump pre-fetched metric instruments instead of
calling into the recorder. Timing goes through the injectable
``clock`` seam (:mod:`repro.obs.clock`), so
:class:`repro.resilience.FakeClock` drives byte-identical span tests.
"""

from __future__ import annotations

from repro.obs.clock import Clock, default_clock
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class _NullSpan:
    """Shared no-op context manager returned by :class:`NullRecorder`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def note(self, **attrs) -> None:
        """Discard span attributes."""


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()

    def add(self, amount: int = 1) -> None:
        """Discard a counter increment."""

    def set(self, value: float) -> None:
        """Discard a gauge value."""

    def observe(self, value: float) -> None:
        """Discard a histogram sample."""


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NullRecorder:
    """The disabled recorder: every operation is a shared no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        """A no-op span."""
        return _NULL_SPAN

    def counter(self, name: str, **labels) -> _NullInstrument:
        """A no-op counter."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        """A no-op gauge."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> _NullInstrument:
        """A no-op histogram."""
        return _NULL_INSTRUMENT

    def absorb(self, profile: dict, tid: int = 0) -> None:
        """Discard a worker profile."""

    def profile(self) -> dict:
        """An empty profile (spans plus an empty metrics snapshot)."""
        return {"spans": [], "metrics": MetricsRegistry().snapshot()}


#: The process-wide disabled recorder; ``recorder=None`` resolves here.
NULL_RECORDER = NullRecorder()


def resolve_recorder(recorder) -> "Recorder | NullRecorder":
    """Map the conventional ``recorder=None`` default to the null one."""
    return NULL_RECORDER if recorder is None else recorder


class _Span:
    """An open span: records itself on ``__exit__`` (exceptions too)."""

    __slots__ = ("_recorder", "name", "attrs", "_start", "_depth")

    def __init__(self, recorder: "Recorder", name: str, attrs: dict) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        recorder = self._recorder
        self._depth = recorder._depth
        recorder._depth += 1
        self._start = recorder._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        recorder = self._recorder
        end = recorder._clock()
        recorder._depth -= 1
        recorder.spans.append(
            {
                "name": self.name,
                "ts": self._start - recorder._epoch,
                "dur": end - self._start,
                "tid": recorder.tid,
                "depth": self._depth,
                "args": self.attrs,
            }
        )
        return False

    def note(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)


class Recorder:
    """Collects spans and metrics for one advise pipeline run.

    ``clock`` is any zero-argument callable returning seconds
    (:func:`repro.obs.clock.default_clock` when omitted;
    :class:`repro.resilience.FakeClock` in deterministic tests). Span
    timestamps are stored relative to the recorder's construction time,
    so a ``FakeClock``-driven run is reproducible byte for byte.

    ``tid`` names the logical thread spans are attributed to: ``0`` is
    the main process, workers get ``1..n`` assigned by the parent in
    submission order when their profiles are :meth:`absorb`-ed.
    """

    __slots__ = ("_clock", "_epoch", "pid", "tid", "metrics", "spans", "_depth")

    enabled = True

    def __init__(
        self, clock: Clock | None = None, *, pid: int = 0, tid: int = 0
    ) -> None:
        self._clock = clock if clock is not None else default_clock
        self._epoch = self._clock()
        self.pid = pid
        self.tid = tid
        self.metrics = MetricsRegistry()
        self.spans: list[dict] = []
        self._depth = 0

    def span(self, name: str, **attrs) -> _Span:
        """Open a span; use as ``with recorder.span("matrix.build"):``."""
        return _Span(self, name, attrs)

    def counter(self, name: str, **labels) -> Counter:
        """The counter for ``(name, labels)`` from the owned registry."""
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge for ``(name, labels)`` from the owned registry."""
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """The histogram for ``(name, labels)`` from the owned registry."""
        return self.metrics.histogram(name, **labels)

    def absorb(self, profile: dict, tid: int = 0) -> None:
        """Merge a worker's :meth:`profile` under logical thread ``tid``.

        Worker span timestamps stay relative to the worker's own epoch
        (each ``tid`` renders as its own thread lane, so within-lane
        nesting stays consistent); metric deltas accumulate via
        :meth:`~repro.obs.metrics.MetricsRegistry.merge`.
        """
        if not profile:
            return
        for span in profile.get("spans", ()):
            self.spans.append({**span, "tid": tid})
        self.metrics.merge(profile.get("metrics", {}))

    def profile(self) -> dict:
        """The serializable profile: span list plus metrics snapshot."""
        return {"spans": list(self.spans), "metrics": self.metrics.snapshot()}
