"""Counters, gauges and histograms under stable dotted names.

The registry absorbs the counters that previously lived as scattered
ad-hoc attributes (``RecomputeReport.kernel_slice_rows``,
``MultiPathSession.joint_reuses``, degradation rungs, pool retries, the
``StatArrays`` lowering-cache hits) and re-exports them under one
namespace. A metric is identified by a dotted ``name`` plus optional
``labels``; the canonical key renders labels sorted
(``matrix.kernel_fallback{reason=numpy unavailable}``), so snapshots are
deterministic regardless of observation order.

Instruments are plain mutable objects handed out by
:class:`MetricsRegistry` — call sites fetch them once (cheap dict hit)
and bump them directly, which keeps hot loops free of string
formatting. :meth:`MetricsRegistry.snapshot` produces the JSON-ready
view and :meth:`MetricsRegistry.merge` folds a worker's snapshot back
into the parent (counters and histograms add, gauges last-write-wins),
which is how parallel matrix builds aggregate to one profile. See
``docs/OBSERVABILITY.md`` for the metric name registry.
"""

from __future__ import annotations


def metric_key(name: str, labels: dict) -> str:
    """Canonical string key: ``name`` plus sorted ``{k=v}`` labels."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the counter by ``amount``."""
        self.value += amount


class Gauge:
    """A point-in-time value; the last ``set`` wins."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Count/sum/min/max over observed samples (no buckets needed yet)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def summary(self) -> dict:
        """JSON-ready view (``min``/``max`` omitted while empty)."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }


class MetricsRegistry:
    """Keyed instrument store with deterministic snapshots."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    def snapshot(self) -> dict:
        """Deterministic JSON-ready view, keys sorted within each kind."""
        return {
            "counters": {
                key: self._counters[key].value
                for key in sorted(self._counters)
            },
            "gauges": {
                key: self._gauges[key].value for key in sorted(self._gauges)
            },
            "histograms": {
                key: self._histograms[key].summary()
                for key in sorted(self._histograms)
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms accumulate; gauges take the incoming
        value (last write wins). This is the worker-aggregation path:
        each pool worker snapshots its private registry and the parent
        merges the deltas in deterministic submission order.
        """
        for key, value in snapshot.get("counters", {}).items():
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter()
            counter.value += value
        for key, value in snapshot.get("gauges", {}).items():
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge()
            gauge.value = value
        for key, summary in snapshot.get("histograms", {}).items():
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram()
            count = summary.get("count", 0)
            if count == 0:
                continue
            histogram.count += count
            histogram.total += summary.get("sum", 0.0)
            if summary["min"] < histogram.minimum:
                histogram.minimum = summary["min"]
            if summary["max"] > histogram.maximum:
                histogram.maximum = summary["max"]
