"""Profile exporters: Chrome trace events, JSON snapshot, ASCII table.

One :func:`profile_document` serves every consumer: its ``traceEvents``
array is the Chrome trace-event format (load the file directly in
Perfetto or ``chrome://tracing`` — extra top-level keys are ignored by
both), ``metrics`` is the registry snapshot, and ``meta`` carries
run context supplied by the caller. Span timestamps/durations are
emitted in microseconds as ``ph: "X"`` complete events with
``pid``/``tid``; logical threads get ``ph: "M"`` metadata names
(``main``, ``worker-1`` …) so merged parallel builds render as separate
lanes. :func:`stats_table` renders the same data as the plain-text
table behind the CLI ``--stats`` flag.

All output is deterministic for a given recorder state (sorted keys,
fixed rounding): under a :class:`repro.resilience.FakeClock` two
identical runs serialize byte for byte, which
``tests/test_obs.py`` pins.
"""

from __future__ import annotations

import json
import pathlib

from repro.reporting.tables import ascii_table


def _thread_name(tid: int) -> str:
    return "main" if tid == 0 else f"worker-{tid}"


def chrome_trace_events(recorder) -> list[dict]:
    """The recorder's spans as Chrome trace-event dicts.

    Emits one ``ph: "M"`` process-name event, one thread-name event per
    logical thread seen, then one ``ph: "X"`` complete event per span
    with ``ts``/``dur`` in microseconds and the span attributes (plus
    nesting ``depth``) under ``args``.
    """
    pid = getattr(recorder, "pid", 0)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    tids = sorted({span["tid"] for span in recorder.spans} | {0})
    for tid in tids:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": _thread_name(tid)},
            }
        )
    for span in recorder.spans:
        events.append(
            {
                "name": span["name"],
                "cat": span["name"].split(".", 1)[0],
                "ph": "X",
                "ts": round(span["ts"] * 1e6, 3),
                "dur": round(span["dur"] * 1e6, 3),
                "pid": pid,
                "tid": span["tid"],
                "args": {**span["args"], "depth": span["depth"]},
            }
        )
    return events


def profile_document(recorder, meta: dict | None = None) -> dict:
    """The combined profile: Chrome trace + metrics snapshot + meta."""
    return {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ms",
        "metrics": recorder.profile()["metrics"],
        "meta": dict(meta or {}),
    }


def dumps_profile(recorder, meta: dict | None = None) -> str:
    """Serialize :func:`profile_document` deterministically."""
    return (
        json.dumps(profile_document(recorder, meta), indent=2, sort_keys=True)
        + "\n"
    )


def write_profile(recorder, path, meta: dict | None = None) -> pathlib.Path:
    """Write the profile JSON to ``path`` and return it."""
    target = pathlib.Path(path)
    target.write_text(dumps_profile(recorder, meta), encoding="utf-8")
    return target


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4f}"
    return str(int(value)) if isinstance(value, float) else str(value)


def stats_table(recorder, title: str = "observability stats") -> str:
    """Spans aggregated by name plus every metric, as ASCII tables.

    The span section shows call counts and total milliseconds per span
    name (sorted by total time, descending); the metric sections list
    counters, gauges and histogram summaries under their canonical
    keys. This is what the CLI ``--stats`` flag prints.
    """
    by_name: dict[str, list[float]] = {}
    for span in recorder.spans:
        entry = by_name.setdefault(span["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += span["dur"]
    span_rows = [
        [name, count, f"{total * 1000.0:.3f}"]
        for name, (count, total) in sorted(
            by_name.items(), key=lambda item: (-item[1][1], item[0])
        )
    ]
    sections = [
        ascii_table(["span", "calls", "total ms"], span_rows, title=title)
    ]
    snapshot = recorder.profile()["metrics"]
    counter_rows = [
        [key, _format_value(value)]
        for key, value in snapshot["counters"].items()
    ]
    if counter_rows:
        sections.append(
            ascii_table(["counter", "value"], counter_rows, title="counters")
        )
    gauge_rows = [
        [key, _format_value(value)] for key, value in snapshot["gauges"].items()
    ]
    if gauge_rows:
        sections.append(
            ascii_table(["gauge", "value"], gauge_rows, title="gauges")
        )
    histogram_rows = [
        [
            key,
            summary["count"],
            _format_value(summary["sum"]),
            _format_value(summary.get("min", 0.0)),
            _format_value(summary.get("max", 0.0)),
        ]
        for key, summary in snapshot["histograms"].items()
    ]
    if histogram_rows:
        sections.append(
            ascii_table(
                ["histogram", "count", "sum", "min", "max"],
                histogram_rows,
                title="histograms",
            )
        )
    return "\n\n".join(sections)
