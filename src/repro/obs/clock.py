"""The injectable timing seam: the single blessed ``perf_counter`` site.

Every span duration in :mod:`repro.obs` comes from a ``clock`` — any
zero-argument callable returning monotonically non-decreasing seconds.
Production recorders default to :func:`default_clock` (the only place in
``src/repro`` allowed to call :func:`time.perf_counter`; the guard in
``tools/check_docs.py`` enforces that), while deterministic tests inject
:class:`repro.resilience.FakeClock`, whose ``advance()`` steps virtual
time by exact amounts so two identical runs export byte-identical
profiles.
"""

from __future__ import annotations

import time
from typing import Callable

#: Signature every recorder clock must satisfy.
Clock = Callable[[], float]


def default_clock() -> float:
    """Monotonic seconds for span timing (the one sanctioned call site)."""
    return time.perf_counter()
