"""Rendering helpers for experiment reports."""

from repro.reporting.tables import (
    ascii_table,
    comparison_table,
    multipath_table,
    replay_table,
    strategy_comparison_table,
    whatif_table,
)

__all__ = [
    "ascii_table",
    "comparison_table",
    "multipath_table",
    "replay_table",
    "strategy_comparison_table",
    "whatif_table",
]
