"""Plain ASCII tables for benchmark output.

The benchmarks print the rows and series the paper reports; these helpers
keep that output uniform without pulling in any dependency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.core.multipath import MultiPathResult
    from repro.search import SearchResult
    from repro.trace import ReplayStep
    from repro.whatif import WhatIfStep


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a right-aligned ASCII table (first column left-aligned)."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(
            len(str(headers[i])),
            *(len(row[i]) for row in rendered_rows),
        )
        if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt([str(h) for h in headers]))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


def strategy_comparison_table(
    results: Sequence["SearchResult"],
    title: str | None = None,
    reference_cost: float | None = None,
) -> str:
    """One row per :class:`~repro.search.SearchResult`.

    ``reference_cost`` (usually the exact optimum) adds a ``vs optimum``
    ratio column so approximate strategies report their gap. The ``work``
    column is each strategy's own measure (configurations evaluated and
    branches pruned, or row lookups for the DP) — the units differ by
    strategy, so it describes rather than compares.
    """
    headers = ["strategy", "cost", "work"]
    if reference_cost is not None:
        headers.append("vs optimum")
    rows: list[list[object]] = []
    for result in results:
        row: list[object] = [
            result.strategy or type(result).__name__,
            result.cost,
            result.work,
        ]
        if reference_cost is not None:
            ratio = (
                result.cost / reference_cost if reference_cost > 0 else float("inf")
            )
            row.append(f"{ratio:.4f}x")
        rows.append(row)
    return ascii_table(headers, rows, title=title)


def multipath_table(
    paths: Sequence[object],
    result: "MultiPathResult",
    title: str | None = None,
) -> str:
    """Per-path configuration table plus the joint-selection summary.

    One row per path of a
    :class:`~repro.core.multipath.MultiPathResult`; the summary lines
    report the joint cost against the independent optima, the sharing
    savings, the union storage footprint, and the budget when one
    constrained the selection.
    """
    rows = [
        [str(path), result.configurations[index].render(path)]
        for index, path in enumerate(paths)
    ]
    table = ascii_table(["path", "chosen configuration"], rows, title=title)
    joint_label = "joint optimum:" if result.exact else "joint selection:"
    lines = [
        table,
        "",
        f"independent optima total: {result.independent_cost:.2f}",
        f"{joint_label:<26}{result.total_cost:.2f}",
        f"sharing savings:          {result.shared_savings:.2f}",
        f"storage pages:            {result.storage_pages:.0f}",
    ]
    if result.budget_pages is not None:
        lines.append(f"budget pages:             {result.budget_pages:.0f}")
        if result.unconstrained_cost is not None:
            lines.append(
                "cost of the budget:       "
                f"+{result.total_cost - result.unconstrained_cost:.2f}"
            )
    return "\n".join(lines)


def whatif_table(
    path: object,
    steps: Sequence["WhatIfStep"],
    title: str | None = None,
) -> str:
    """Per-step report of a what-if perturbation sequence.

    One row per :class:`~repro.whatif.WhatIfStep`: the perturbation, how
    much matrix work the step needed (rows re-priced + rows CMD-patched,
    or ``full`` on a fallback rebuild — with ``kN`` marking the ``N``
    rows the columnar kernel re-priced as one dirty slice and ``!`` a
    step whose kernel slice fell back to the legacy evaluator), the
    resulting optimal cost and its delta, and the selected configuration
    — printed only when it changed from the previous step, so
    drifting-workload reports surface the re-indexing points at a
    glance.
    """
    rows: list[list[object]] = []
    previous_cost: float | None = None
    fallback_reasons: set[str] = set()
    for step in steps:
        if step.report is None:
            work = "-"
        elif step.report.mode == "full":
            work = f"full ({step.report.total_rows} rows)"
        else:
            work = (
                f"{len(step.report.recomputed_rows)}"
                f"+{len(step.report.patched_rows)}p"
                f"/{step.report.total_rows}"
            )
            if step.report.kernel_slice_rows:
                work += f" k{step.report.kernel_slice_rows}"
            if step.report.kernel_fallback_reason is not None:
                work += "!"
                fallback_reasons.add(step.report.kernel_fallback_reason)
        delta = "" if previous_cost is None else f"{step.cost - previous_cost:+.2f}"
        configuration = (
            step.result.configuration.render(path)
            if step.report is None or step.configuration_changed
            else "(unchanged)"
        )
        rows.append(
            [step.description, work, f"{step.cost:.2f}", delta, configuration]
        )
        previous_cost = step.cost
    table = ascii_table(
        ["step", "dirty rows", "cost", "delta", "configuration"],
        rows,
        title=title,
    )
    if fallback_reasons:
        table += "\n! kernel slice fell back to the legacy evaluator: " + (
            ", ".join(sorted(fallback_reasons))
        )
    return table


def replay_table(
    path: object,
    steps: Sequence["ReplayStep"],
    title: str | None = None,
) -> str:
    """Timeline of a trace replay's re-advise points.

    One row per :class:`~repro.trace.ReplayStep`: where the step came
    from (baseline, triggering window, or the end-of-trace flush), the
    events consumed so far, the drift signal that fired, the batch size
    handed to ``apply_many`` with the matrix work it caused, the
    resulting cost and its delta — and the recommended configuration,
    printed only when it changed, so long replays surface the actual
    re-indexing points at a glance.
    """
    rows: list[list[object]] = []
    previous_cost: float | None = None
    for step in steps:
        if step.window is not None:
            origin = f"window {step.window}"
        elif step.forced:
            origin = "flush"
        else:
            origin = "baseline"
        if step.report is None:
            work = "-"
        elif step.report.mode == "full":
            work = f"full ({step.report.total_rows} rows)"
        else:
            work = (
                f"{len(step.report.recomputed_rows)}"
                f"+{len(step.report.patched_rows)}p"
                f"/{step.report.total_rows}"
            )
        delta = "" if previous_cost is None else f"{step.cost - previous_cost:+.2f}"
        configuration = (
            step.result.configuration.render(path)
            if step.report is None or step.configuration_changed
            else "(unchanged)"
        )
        if step.report is None:
            drift = "-"
        elif step.change > 9.995:
            # A frequency appearing from (near) zero registers as a huge
            # but uninformative relative change; cap the display.
            drift = ">999%"
        else:
            drift = f"{step.change:.0%}"
        rows.append(
            [
                origin,
                step.events_seen,
                drift,
                step.perturbations if step.report is not None else "-",
                work,
                f"{step.cost:.2f}",
                delta,
                configuration,
            ]
        )
        previous_cost = step.cost
    return ascii_table(
        [
            "step",
            "events",
            "drift",
            "batch",
            "dirty rows",
            "cost",
            "delta",
            "configuration",
        ],
        rows,
        title=title,
    )


def comparison_table(
    label: str,
    paper_value: object,
    measured_value: object,
    note: str = "",
) -> str:
    """One paper-vs-measured line for EXPERIMENTS.md-style output."""
    suffix = f"  ({note})" if note else ""
    return f"{label}: paper={_cell(paper_value)} measured={_cell(measured_value)}{suffix}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
