"""Plain ASCII tables for benchmark output.

The benchmarks print the rows and series the paper reports; these helpers
keep that output uniform without pulling in any dependency.
"""

from __future__ import annotations

from typing import Sequence


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a right-aligned ASCII table (first column left-aligned)."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(
            len(str(headers[i])),
            *(len(row[i]) for row in rendered_rows),
        )
        if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt([str(h) for h in headers]))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


def comparison_table(
    label: str,
    paper_value: object,
    measured_value: object,
    note: str = "",
) -> str:
    """One paper-vs-measured line for EXPERIMENTS.md-style output."""
    suffix = f"  ({note})" if note else ""
    return f"{label}: paper={_cell(paper_value)} measured={_cell(measured_value)}{suffix}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
