"""Plain ASCII tables for benchmark output.

The benchmarks print the rows and series the paper reports; these helpers
keep that output uniform without pulling in any dependency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.core.multipath import MultiPathResult
    from repro.search import SearchResult


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a right-aligned ASCII table (first column left-aligned)."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(
            len(str(headers[i])),
            *(len(row[i]) for row in rendered_rows),
        )
        if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt([str(h) for h in headers]))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


def strategy_comparison_table(
    results: Sequence["SearchResult"],
    title: str | None = None,
    reference_cost: float | None = None,
) -> str:
    """One row per :class:`~repro.search.SearchResult`.

    ``reference_cost`` (usually the exact optimum) adds a ``vs optimum``
    ratio column so approximate strategies report their gap. The ``work``
    column is each strategy's own measure (configurations evaluated and
    branches pruned, or row lookups for the DP) — the units differ by
    strategy, so it describes rather than compares.
    """
    headers = ["strategy", "cost", "work"]
    if reference_cost is not None:
        headers.append("vs optimum")
    rows: list[list[object]] = []
    for result in results:
        row: list[object] = [
            result.strategy or type(result).__name__,
            result.cost,
            result.work,
        ]
        if reference_cost is not None:
            ratio = (
                result.cost / reference_cost if reference_cost > 0 else float("inf")
            )
            row.append(f"{ratio:.4f}x")
        rows.append(row)
    return ascii_table(headers, rows, title=title)


def multipath_table(
    paths: Sequence[object],
    result: "MultiPathResult",
    title: str | None = None,
) -> str:
    """Per-path configuration table plus the joint-selection summary.

    One row per path of a
    :class:`~repro.core.multipath.MultiPathResult`; the summary lines
    report the joint cost against the independent optima, the sharing
    savings, the union storage footprint, and the budget when one
    constrained the selection.
    """
    rows = [
        [str(path), result.configurations[index].render(path)]
        for index, path in enumerate(paths)
    ]
    table = ascii_table(["path", "chosen configuration"], rows, title=title)
    joint_label = "joint optimum:" if result.exact else "joint selection:"
    lines = [
        table,
        "",
        f"independent optima total: {result.independent_cost:.2f}",
        f"{joint_label:<26}{result.total_cost:.2f}",
        f"sharing savings:          {result.shared_savings:.2f}",
        f"storage pages:            {result.storage_pages:.0f}",
    ]
    if result.budget_pages is not None:
        lines.append(f"budget pages:             {result.budget_pages:.0f}")
        if result.unconstrained_cost is not None:
            lines.append(
                "cost of the budget:       "
                f"+{result.total_cost - result.unconstrained_cost:.2f}"
            )
    return "\n".join(lines)


def comparison_table(
    label: str,
    paper_value: object,
    measured_value: object,
    note: str = "",
) -> str:
    """One paper-vs-measured line for EXPERIMENTS.md-style output."""
    suffix = f"  ({note})" if note else ""
    return f"{label}: paper={_cell(paper_value)} measured={_cell(measured_value)}{suffix}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
