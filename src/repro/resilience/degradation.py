"""Structured accounting of every degraded decision.

A resilient advisor is allowed to answer from a cheaper rung — serial
instead of parallel, legacy evaluator instead of the columnar kernel,
a beam instead of the exact DP, the last-known-good configuration
instead of any fresh search — but it is *never* allowed to do so
silently. Every fallback records a :class:`DegradationEvent` into the
:class:`DegradationReport` threaded through the stack, so tests (and
operators) can assert exactly which rungs answered and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class DegradationEvent:
    """One degraded decision: which layer fell back, to what, and why."""

    #: The layer that degraded: ``"matrix"``, ``"kernel"``, ``"search"``,
    #: ``"session"``, ``"multipath"``, ``"trace"`` or ``"checkpoint"``.
    layer: str
    #: What the layer did instead (e.g. ``"serial_fallback"``,
    #: ``"greedy_beam"``, ``"last_known_good"``, ``"skip_line"``).
    action: str
    #: Why it had to (e.g. ``"BrokenProcessPool"``, ``"deadline_expired"``).
    reason: str
    #: Free-form structured context (attempt counts, widths, line numbers).
    detail: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """One human-readable line for tables and logs."""
        extra = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
            if self.detail
            else ""
        )
        return f"[{self.layer}] {self.action}: {self.reason}{extra}"


class DegradationReport:
    """An append-only log of :class:`DegradationEvent` records."""

    def __init__(self) -> None:
        self.events: list[DegradationEvent] = []

    def record(
        self, layer: str, action: str, reason: str, **detail: Any
    ) -> DegradationEvent:
        """Append one event and return it."""
        event = DegradationEvent(
            layer=layer, action=action, reason=reason, detail=detail
        )
        self.events.append(event)
        return event

    def count(self, layer: str | None = None, action: str | None = None) -> int:
        """How many events match the given layer/action filters."""
        return sum(
            1
            for event in self.events
            if (layer is None or event.layer == layer)
            and (action is None or event.action == action)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        # An *empty* report is still a real report: truthiness follows
        # "did anything degrade", which is what callers branch on.
        return bool(self.events)

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-ready event list (for CLI ``--json`` payloads)."""
        return [
            {
                "layer": event.layer,
                "action": event.action,
                "reason": event.reason,
                "detail": dict(event.detail),
            }
            for event in self.events
        ]

    def describe(self) -> str:
        """Multi-line summary; empty string when nothing degraded."""
        return "\n".join(event.describe() for event in self.events)
