"""Retry with exponential backoff for transient infrastructure faults.

The worker-pool fan-out in :mod:`repro.core.cost_matrix` can fail for
reasons that are genuinely transient (a worker killed by the OOM
killer, a fork raced against interpreter shutdown). A
:class:`RetryPolicy` describes how many attempts to make and how long
to back off between them; :func:`run_with_retry` executes an operation
under a policy and reports what happened instead of deciding for the
caller.

Sleeping goes through the module-level :func:`_sleep` seam so tests and
the fault-injection layer can observe (or skip) the backoff without
real waiting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import ResilienceError

# Patchable seam: tests replace this to assert backoff without waiting.
_sleep = time.sleep


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts to make and how to back off between them."""

    #: Total attempts, including the first (1 means "no retries").
    attempts: int = 2
    #: Delay before the second attempt, in seconds.
    backoff_seconds: float = 0.05
    #: Multiplier applied to the delay after each retry.
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ResilienceError(
                f"retry policy needs at least one attempt, got {self.attempts}"
            )
        if self.backoff_seconds < 0.0 or self.multiplier <= 0.0:
            raise ResilienceError(
                "retry backoff must be non-negative with a positive multiplier"
            )

    def delays(self) -> Iterator[float]:
        """Per-attempt pre-delays: ``0.0`` first, then the backoff ramp."""
        yield 0.0
        delay = self.backoff_seconds
        for _ in range(self.attempts - 1):
            yield delay
            delay *= self.multiplier


#: Default policy for the worker-pool fan-out: one quick retry. The pool
#: fallback target (serial evaluation) is always correct, so long ramps
#: would only delay a guaranteed-good answer.
DEFAULT_RETRY_POLICY = RetryPolicy(attempts=2, backoff_seconds=0.05)


def run_with_retry(
    operation: Callable[[], Any],
    exceptions: tuple[type[BaseException], ...],
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> tuple[Any, int, BaseException | None]:
    """Run ``operation`` under ``policy``; never raises the caught types.

    Returns ``(value, attempts_used, last_error)``: on success
    ``last_error`` is ``None``; after exhausting the policy ``value`` is
    ``None`` and ``last_error`` is the final exception. ``on_retry`` is
    called with ``(attempt_number, error)`` after each failed attempt.
    Exceptions outside ``exceptions`` propagate unchanged.
    """
    last_error: BaseException | None = None
    attempt = 0
    for attempt, delay in enumerate(policy.delays(), start=1):
        if delay > 0.0:
            _sleep(delay)
        try:
            return operation(), attempt, None
        except exceptions as error:
            last_error = error
            if on_retry is not None:
                on_retry(attempt, error)
    return None, attempt, last_error
