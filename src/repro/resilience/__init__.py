"""`repro.resilience`: the robustness layer of the advising stack.

Production index advising has to survive the infrastructure it runs on:
worker pools break, traces arrive corrupted, exact searches overrun
their latency budget, and processes get killed mid-stream. This package
collects the machinery that keeps the advisor answering anyway —

* :mod:`~repro.resilience.deadline` — :class:`Deadline` wall-clock
  budgets checked cooperatively inside every search strategy;
* :mod:`~repro.resilience.degradation` — the structured
  :class:`DegradationReport` every fallback must record into, so nothing
  degrades silently;
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` exponential
  backoff for transient worker-pool faults;
* :mod:`~repro.resilience.degrade` — the exact → shrinking-beam →
  last-known-good ladder behind deadline-bounded ``advise``;
* :mod:`~repro.resilience.checkpoint` — versioned JSONL snapshots of
  :class:`~repro.trace.ContinuousAdvisor` /
  :class:`~repro.whatif.AdvisorSession` state with bit-identical resume;
* :mod:`~repro.resilience.faults` — the seeded fault-injection harness
  behind the chaos test suite.

The light modules (deadline, degradation, retry) import eagerly; the
heavy ones (degrade, checkpoint, faults — which pull in the search,
whatif and trace layers) load lazily via :pep:`562` so that
:mod:`repro.core.cost_matrix` can import this package's retry machinery
without creating an import cycle.
"""

from __future__ import annotations

from repro.errors import CheckpointError, DeadlineExceeded, ResilienceError
from repro.resilience.deadline import Deadline
from repro.resilience.degradation import DegradationEvent, DegradationReport
from repro.resilience.retry import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    run_with_retry,
)

__all__ = [
    "CheckpointError",
    "Deadline",
    "DeadlineExceeded",
    "DegradationEvent",
    "DegradationReport",
    "DEFAULT_RETRY_POLICY",
    "FakeClock",
    "FaultInjector",
    "ResilienceError",
    "RetryPolicy",
    "degraded_search",
    "restore_advisor",
    "restore_session",
    "run_with_retry",
    "save_advisor",
    "save_session",
]

# Lazily resolved: these modules import the trace/whatif/search layers,
# which in turn import core.cost_matrix — the module that imports *us*.
_LAZY = {
    "degraded_search": ("repro.resilience.degrade", "degraded_search"),
    "reprice_configuration": (
        "repro.resilience.degrade",
        "reprice_configuration",
    ),
    "save_advisor": ("repro.resilience.checkpoint", "save_advisor"),
    "restore_advisor": ("repro.resilience.checkpoint", "restore_advisor"),
    "save_session": ("repro.resilience.checkpoint", "save_session"),
    "restore_session": ("repro.resilience.checkpoint", "restore_session"),
    "save_multipath": ("repro.resilience.checkpoint", "save_multipath"),
    "restore_multipath": ("repro.resilience.checkpoint", "restore_multipath"),
    "FaultInjector": ("repro.resilience.faults", "FaultInjector"),
    "FakeClock": ("repro.resilience.faults", "FakeClock"),
}


def __getattr__(name: str):
    """:pep:`562` lazy loading for the heavy submodule symbols."""
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
