"""The deadline degradation ladder: exact → shrinking beam → last good.

When an exact search raises :class:`~repro.errors.DeadlineExceeded`,
the advisor still owes *an* answer — a worse-but-valid configuration
now beats an optimal one later. :func:`degraded_search` walks the
explicit ladder the strategy registry makes possible:

1. (the caller already tried) the exact strategy under the deadline;
2. ``greedy_beam`` with shrinking widths (:data:`BEAM_LADDER`), each
   attempt still under the same deadline;
3. the last-known-good configuration re-priced against the *current*
   matrix (O(blocks), no search at all);
4. with no last-known-good available, a width-1 beam run *without*
   deadline enforcement — the advisor must answer, so this final rung
   is allowed to overrun and says so in its rung label.

Every rung taken is recorded in the caller's
:class:`~repro.resilience.DegradationReport`; the winning rung is
stamped into ``result.extras["rung"]`` (exact answers carry no stamp —
absence means ``"exact"``).
"""

from __future__ import annotations

from repro.errors import DeadlineExceeded
from repro.search.base import SearchResult
from repro.search.greedy_beam import GreedyBeamStrategy

#: Beam widths tried, in order, when the exact rung misses its deadline.
BEAM_LADDER = (8, 4, 2)

#: ``SearchResult.strategy`` of an answer taken from the last-known-good
#: configuration (rung 3): no search ran, the configuration was re-priced.
LAST_KNOWN_GOOD = "last_known_good"


def reprice_configuration(matrix, configuration) -> float:
    """The configuration's total cost against the (current) matrix."""
    return sum(
        matrix.cost(part.start, part.end, part.organization)
        for part in configuration.assignments
    )


def degraded_search(
    matrix,
    *,
    deadline,
    last_known_good: SearchResult | None = None,
    degradation=None,
    keep_trace: bool = False,
    layer: str = "session",
    reason: str = "deadline_expired",
    recorder=None,
) -> SearchResult:
    """Answer from the cheapest rung that fits the remaining budget.

    Called after the exact rung already raised
    :class:`~repro.errors.DeadlineExceeded`. Always returns a result.
    The winning rung also lands on the ``resilience.degradations``
    counter of ``recorder`` (a :class:`~repro.obs.Recorder`), labeled by
    layer and rung.
    """
    from repro.obs.recorder import resolve_recorder

    recorder = resolve_recorder(recorder)

    def count_rung(rung: str) -> None:
        recorder.counter(
            "resilience.degradations", layer=layer, action=rung
        ).add()

    for width in BEAM_LADDER:
        if deadline.expired:
            break
        try:
            result = GreedyBeamStrategy(width=width).search(
                matrix, keep_trace=keep_trace, deadline=deadline,
                recorder=recorder,
            )
        except DeadlineExceeded:
            continue
        rung = f"greedy_beam:{width}"
        result.extras["rung"] = rung
        result.extras["degraded"] = True
        count_rung(rung)
        if degradation is not None:
            degradation.record(layer, "greedy_beam", reason, width=width)
        return result

    if last_known_good is not None:
        cost = reprice_configuration(matrix, last_known_good.configuration)
        count_rung(LAST_KNOWN_GOOD)
        if degradation is not None:
            degradation.record(layer, LAST_KNOWN_GOOD, reason)
        return SearchResult(
            configuration=last_known_good.configuration,
            cost=cost,
            evaluated=0,
            pruned=0,
            trace=[],
            strategy=LAST_KNOWN_GOOD,
            extras={"rung": LAST_KNOWN_GOOD, "degraded": True},
        )

    # No previous answer to fall back on: the bottom rung must run to
    # completion even though the budget is spent. Width 1 is the
    # cheapest complete sweep the registry offers.
    result = GreedyBeamStrategy(width=1).search(
        matrix, keep_trace=keep_trace, recorder=recorder
    )
    result.extras["rung"] = "greedy_beam:1:overrun"
    result.extras["degraded"] = True
    count_rung("greedy_beam:1:overrun")
    if degradation is not None:
        degradation.record(
            layer, "greedy_beam_overrun", reason, width=1
        )
    return result
