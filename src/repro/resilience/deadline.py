"""Wall-clock budgets for deadline-bounded advising.

A :class:`Deadline` is a small monotonic-clock budget handed down the
advising stack (``advise`` → search strategy → per-position relaxation).
Search strategies check it *cooperatively* — once per DP position, beam
frontier level, branch-and-bound node, or enumerated partition — and
raise :class:`~repro.errors.DeadlineExceeded` when the budget is spent,
so an exact search never overruns its slot by more than one step's
work. The degradation ladder above (``repro.resilience.degrade``)
catches the exception and answers from a cheaper rung.

The clock is injectable (``clock=time.monotonic`` by default) so the
fault-injection layer can simulate a hung search deterministically —
a fake clock that jumps forward per call expires a deadline without
any real waiting.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import DeadlineExceeded, ResilienceError


class Deadline:
    """A monotonic wall-clock budget with cooperative expiry checks."""

    __slots__ = ("budget_seconds", "_clock", "_started")

    def __init__(
        self,
        budget_seconds: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not (0.0 <= float(budget_seconds) < float("inf")):
            raise ResilienceError(
                f"deadline budget must be a finite non-negative number "
                f"of seconds, got {budget_seconds!r}"
            )
        self.budget_seconds = float(budget_seconds)
        self._clock = clock
        self._started = clock()

    @classmethod
    def after_ms(
        cls,
        budget_ms: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        return cls(budget_ms / 1000.0, clock=clock)

    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left in the budget (never negative)."""
        return max(0.0, self.budget_seconds - self.elapsed())

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.elapsed() >= self.budget_seconds

    def check(self, label: str = "search") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` once expired.

        ``label`` names the checkpoint that noticed the expiry; it is
        carried in the exception message so degradation events can say
        *where* the budget ran out, not just that it did.
        """
        if self.expired:
            raise DeadlineExceeded(
                f"{label}: deadline of {self.budget_seconds * 1000.0:.1f} ms "
                f"expired after {self.elapsed() * 1000.0:.1f} ms"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(budget_seconds={self.budget_seconds!r}, "
            f"remaining={self.remaining():.4f})"
        )
