"""Seeded fault injection for the chaos test suite.

Resilience code that is only exercised by real infrastructure failures
is untested code. :class:`FaultInjector` manufactures the failures on
demand — worker-pool crashes, searches that outlive their deadline,
corrupted trace lines, torn checkpoint writes — all **deterministic**
under a seed, so a chaos test that fails replays exactly.

Injection points map one-to-one onto the production seams they attack:

* :meth:`FaultInjector.broken_pool` patches
  :func:`repro.core.cost_matrix._run_pool_once` (the single place every
  parallel matrix construction funnels through) to raise
  ``BrokenProcessPool`` for the first *n* calls;
* :meth:`FaultInjector.clock` returns a :class:`FakeClock` to drive
  :class:`~repro.resilience.Deadline` expiry without real waiting;
* :meth:`FaultInjector.corrupt_trace` rewrites seeded lines of a JSONL
  trace into garbage (exercising ``iter_trace``'s ``on_error`` paths);
* :meth:`FaultInjector.torn_checkpoint` truncates a checkpoint file
  mid-record (exercising the digest-trailer integrity check).

Every injection is appended to :attr:`FaultInjector.log`, so chaos
tests can assert that each *injected* fault produced a corresponding
*recorded* degradation — nothing swallowed silently.
"""

from __future__ import annotations

import json
import pathlib
import random
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ResilienceError


class FakeClock:
    """A manually advanced monotonic clock for deterministic deadlines.

    Pass as ``Deadline(budget, clock=fake)`` (or assign to
    ``ContinuousAdvisor._deadline_clock``) and call :meth:`advance` to
    expire budgets on cue — no sleeping, no flaky timing.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        """Move time forward (never backward — monotonic)."""
        if seconds < 0:
            raise ResilienceError(
                f"a monotonic clock cannot go backward ({seconds})"
            )
        self.now += seconds


class FaultInjector:
    """Deterministic fault factory; one seed, one failure schedule."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        #: Every injection performed: ``(kind, detail)`` pairs.
        self.log: list[tuple[str, dict]] = []

    def clock(self, start: float = 0.0) -> FakeClock:
        """A fresh :class:`FakeClock` (logged for the test record)."""
        self.log.append(("clock", {"start": start}))
        return FakeClock(start)

    @contextmanager
    def broken_pool(self, times: int = 1) -> Iterator[list[int]]:
        """Crash the next ``times`` worker-pool fan-outs.

        Patches the module-level ``_run_pool_once`` seam in
        :mod:`repro.core.cost_matrix`; later calls pass through to the
        real pool. Yields a single-element list holding the crash count
        so far, so tests can assert how many fan-outs were actually hit.
        """
        from repro.core import cost_matrix

        original = cost_matrix._run_pool_once
        crashes = [0]

        def unreliable(pool_options, payloads):
            if crashes[0] < times:
                crashes[0] += 1
                self.log.append(
                    ("broken_pool", {"call": crashes[0], "of": times})
                )
                raise BrokenProcessPool("injected worker-pool crash")
            return original(pool_options, payloads)

        cost_matrix._run_pool_once = unreliable
        try:
            yield crashes
        finally:
            cost_matrix._run_pool_once = original

    def corrupt_trace(
        self, path: str | pathlib.Path, corruptions: int = 1
    ) -> list[int]:
        """Overwrite seeded lines of a JSONL trace with garbage.

        Three corruption shapes rotate deterministically: truncated
        JSON, valid JSON with an unknown event kind, and a negative
        timestamp. Returns the corrupted line numbers (1-based), which
        chaos tests compare against
        :class:`~repro.trace.TraceReadReport.skipped_lines`.
        """
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise ResilienceError(f"cannot corrupt empty trace {path}")
        count = min(corruptions, len(lines))
        numbers = sorted(self.rng.sample(range(1, len(lines) + 1), count))
        shapes = [
            '{"ts": 1.0, "kind": "qu',
            json.dumps({"ts": 1.0, "kind": "compact", "class": "X"}),
            json.dumps({"ts": -5.0, "kind": "query", "class": "X"}),
        ]
        for position, number in enumerate(numbers):
            lines[number - 1] = shapes[position % len(shapes)]
            self.log.append(("corrupt_trace", {"line": number}))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        return numbers

    def torn_checkpoint(self, path: str | pathlib.Path) -> int:
        """Truncate a checkpoint at a seeded byte offset (a torn write).

        Keeps between 10% and 90% of the file, cut mid-record, and
        returns the bytes kept. Restoring the torn file must raise
        :class:`~repro.errors.CheckpointError` — never resume silently.
        """
        raw = pathlib.Path(path).read_bytes()
        if len(raw) < 2:
            raise ResilienceError(f"cannot tear empty checkpoint {path}")
        keep = self.rng.randint(max(1, len(raw) // 10), (len(raw) * 9) // 10)
        pathlib.Path(path).write_bytes(raw[:keep])
        self.log.append(
            ("torn_checkpoint", {"kept": keep, "of": len(raw)})
        )
        return keep
