"""Versioned JSONL checkpoints with bit-identical resume.

A :class:`~repro.trace.ContinuousAdvisor` is a long-lived process: it
folds an unbounded operation stream through windowed estimates, drift
decisions and incremental search state. When that process dies — OOM
kill, deploy, power loss — everything it learned dies with it unless the
state is on disk. This module snapshots the full advising stack
(:func:`save_advisor`) and resurrects it (:func:`restore_advisor`) such
that the resumed process emits a :class:`~repro.trace.ReplayStep`
timeline **bit-identical** to one that was never interrupted; the
Hypothesis property in ``tests/test_resilience_checkpoint.py`` pins it
for every seeded trace regime and an arbitrary cut point.

Format
------
One checkpoint is a JSONL file:

* a header record — ``{"format": "repro-checkpoint", "version": 1,
  "kind": ...}`` — versioned so future layouts can evolve;
* one record per state section (options, session, aggregator, detector,
  pending perturbations, degradation log, one per replay step);
* a trailer — ``{"section": "end", "records": N, "digest": sha256}`` —
  whose digest covers every preceding byte, so a torn or tampered file
  fails :class:`~repro.errors.CheckpointError` instead of resuming
  silently wrong.

Floats ride through JSON's exact ``repr`` round-trip for doubles, which
is what makes value-level bit-identity possible. Writes are atomic
(temp file + ``os.replace`` via the patchable :func:`_write_payload`
seam, which the fault harness tears mid-write in tests), so a crash
*during* checkpointing leaves the previous checkpoint intact.

Restore rebuilds live objects from the caller-provided baseline inputs
(the same ``stats``/``load`` the original process was constructed with —
paths and cost-model configs are code-level objects and are not
serialized) plus the stored values, then *primes* the session: one
``advise()`` fills the incremental search tables, the primed answer is
verified against the stored one, and the stored result object is put
back so subsequent cached answers serialize identically to the
uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time
from typing import Any

from repro.costmodel.params import ClassStats, PathStatistics
from repro.errors import CheckpointError
from repro.resilience.degradation import DegradationReport
from repro.trace.continuous import ContinuousAdvisor, ReplayStep
from repro.trace.drift import DriftDetector
from repro.trace.events import TraceEvent
from repro.trace.window import WindowAggregator
from repro.whatif.perturbation import Perturbation
from repro.whatif.session import AdvisorSession, MultiPathSession
from repro.workload.load import LoadDistribution, LoadTriplet

#: The on-disk format marker every checkpoint starts with.
FORMAT = "repro-checkpoint"

#: Current layout version; bumped on incompatible changes.
VERSION = 1


# ----------------------------------------------------------------------
# value <-> JSON helpers
# ----------------------------------------------------------------------
def _stats_values(stats: PathStatistics) -> dict[str, dict[str, float]]:
    """Per-class ``{objects, distinct, fanout}`` of a statistics object."""
    values: dict[str, dict[str, float]] = {}
    for position in range(1, stats.length + 1):
        for member in stats.members(position):
            current = stats.stats_of(member)
            values[member] = {
                "objects": current.objects,
                "distinct": current.distinct,
                "fanout": current.fanout,
            }
    return values


def _load_values(load: LoadDistribution) -> dict[str, list[float]]:
    """Per-class ``[query, insert, delete]`` of a load distribution."""
    return {
        name: [triplet.query, triplet.insert, triplet.delete]
        for name, triplet in load.items()
    }


def _rebuild_stats(
    template: PathStatistics, values: dict[str, dict[str, float]]
) -> PathStatistics:
    """Statistics with the template's path/config and the stored values."""
    per_class = {
        name: ClassStats(
            objects=fields["objects"],
            distinct=fields["distinct"],
            fanout=fields["fanout"],
        )
        for name, fields in values.items()
    }
    return PathStatistics(template.path, per_class, template.config)


def _rebuild_load(
    template: LoadDistribution, values: dict[str, list[float]]
) -> LoadDistribution:
    """A load with the template's path and the stored triplets."""
    triplets = {
        name: LoadTriplet(query=components[0], insert=components[1], delete=components[2])
        for name, components in values.items()
    }
    return LoadDistribution(template.path, triplets)


# ----------------------------------------------------------------------
# file I/O
# ----------------------------------------------------------------------
def _write_payload(path: str | pathlib.Path, payload: str) -> None:
    """Atomically replace ``path`` with ``payload``.

    The write goes to a sibling temp file which is fsynced and then
    ``os.replace``-d over the target, so a crash mid-write can tear the
    temp file but never the checkpoint itself. Module-level on purpose:
    the fault harness patches this seam to simulate torn writes.
    """
    temporary = f"{path}.tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)


def _serialize(kind: str, records: list[dict[str, Any]]) -> str:
    """Header + section records + digest trailer, as one JSONL payload."""
    lines = [
        json.dumps(
            {"format": FORMAT, "version": VERSION, "kind": kind},
            separators=(",", ":"),
        )
    ]
    lines.extend(
        json.dumps(record, separators=(",", ":")) for record in records
    )
    body = "\n".join(lines) + "\n"
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    trailer = json.dumps(
        {"section": "end", "records": len(records), "digest": digest},
        separators=(",", ":"),
    )
    return body + trailer + "\n"


def _load_records(
    path: str | pathlib.Path, expected_kind: str
) -> list[dict[str, Any]]:
    """Parse + integrity-check a checkpoint; returns its section records."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from None
    lines = raw.splitlines()
    if len(lines) < 2:
        raise CheckpointError(
            f"checkpoint {path} is truncated: no trailer record"
        )
    try:
        trailer = json.loads(lines[-1])
    except json.JSONDecodeError:
        raise CheckpointError(
            f"checkpoint {path} is torn: trailer is not valid JSON"
        ) from None
    if not isinstance(trailer, dict) or trailer.get("section") != "end":
        raise CheckpointError(
            f"checkpoint {path} is torn: last record is not the trailer"
        )
    body = "\n".join(lines[:-1]) + "\n"
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    if digest != trailer.get("digest"):
        raise CheckpointError(
            f"checkpoint {path} failed its integrity check "
            f"(stored digest does not match the file contents)"
        )
    try:
        header = json.loads(lines[0])
        records = [json.loads(line) for line in lines[1:-1]]
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"checkpoint {path} contains invalid JSON: {error.msg}"
        ) from None
    if header.get("format") != FORMAT:
        raise CheckpointError(
            f"{path} is not a repro checkpoint (format marker missing)"
        )
    if header.get("version") != VERSION:
        raise CheckpointError(
            f"checkpoint {path} has unsupported version "
            f"{header.get('version')!r} (this build reads {VERSION})"
        )
    if header.get("kind") != expected_kind:
        raise CheckpointError(
            f"checkpoint {path} holds a {header.get('kind')!r} snapshot, "
            f"not {expected_kind!r}"
        )
    if trailer.get("records") != len(records):
        raise CheckpointError(
            f"checkpoint {path} is truncated: trailer promises "
            f"{trailer.get('records')} records, found {len(records)}"
        )
    return records


def _section(
    records: list[dict[str, Any]], name: str, path: str | pathlib.Path
) -> dict[str, Any]:
    for record in records:
        if record.get("section") == name:
            return record
    raise CheckpointError(f"checkpoint {path} is missing its {name!r} section")


# ----------------------------------------------------------------------
# session snapshots
# ----------------------------------------------------------------------
def _session_record(session: AdvisorSession) -> dict[str, Any]:
    last = session._result
    return {
        "section": "session",
        "strategy": session.strategy,
        "stats": _stats_values(session.stats),
        "load": _load_values(session.load),
        "version": session.version,
        "applied_steps": session.applied_steps,
        "batched_steps": session.batched_steps,
        "pending_rows": sorted(list(row) for row in session._pending),
        "pending_full": session._pending_full,
        "last_result": None
        if last is None
        else _result_record(last),
    }


def _result_record(result) -> dict[str, Any]:
    """A search result through ReplayStep's canonical serializer."""
    shim = ReplayStep(
        index=0,
        window=None,
        events_seen=0,
        change=0.0,
        perturbations=0,
        report=None,
        result=result,
        configuration_changed=False,
    )
    return shim.to_dict()["result"]


def _result_from_record(record: dict[str, Any]):
    shim = ReplayStep.from_dict(
        {
            "index": 0,
            "window": None,
            "events_seen": 0,
            "change": 0.0,
            "perturbations": 0,
            "forced": False,
            "configuration_changed": False,
            "report": None,
            "result": record,
        }
    )
    return shim.result


def _restore_session_state(
    record: dict[str, Any],
    stats_template: PathStatistics,
    load_template: LoadDistribution,
    path: str | pathlib.Path,
    degradation: DegradationReport | None,
    session_options: dict[str, Any],
) -> AdvisorSession:
    """Rebuild + prime one session from its checkpoint record.

    The fresh matrix is computed from the stored *current* inputs (the
    bit-identity of ``CostMatrix.compute`` across kernels and worker
    counts makes it equal to the incrementally recomputed one that died
    with the process), then one priming ``advise()`` fills the search
    tables. The primed answer doubles as verification: when the stored
    last result was exact and nothing was pending, it must match cost
    and configuration exactly — a mismatch means the caller supplied
    baseline inputs that are not the ones the checkpoint was taken
    against. Finally the stored result object replaces the primed one,
    so cached-answer steps after resume serialize byte-for-byte like the
    uninterrupted run (work counters such as ``rows_inspected`` would
    otherwise betray the restart).
    """
    strategy = session_options.get("strategy", "incremental_dynamic_program")
    if record["strategy"] != strategy:
        raise CheckpointError(
            f"checkpoint {path} was taken under strategy "
            f"{record['strategy']!r}; restoring under {strategy!r} would "
            f"not resume bit-identically"
        )
    try:
        current_stats = _rebuild_stats(stats_template, record["stats"])
        current_load = _rebuild_load(load_template, record["load"])
    except Exception as error:
        raise CheckpointError(
            f"checkpoint {path} does not describe the provided path: {error}"
        ) from None
    session = AdvisorSession(
        current_stats,
        current_load,
        degradation=degradation,
        **session_options,
    )
    primed = session.advise()
    stored = record["last_result"]
    if stored is not None:
        result = _result_from_record(stored)
        exact = not result.extras.get("degraded", False)
        clean = not record["pending_rows"] and not record["pending_full"]
        if exact and clean and (
            primed.cost != result.cost
            or primed.configuration != result.configuration
        ):
            raise CheckpointError(
                f"checkpoint {path} does not match the provided baseline "
                f"inputs: primed cost {primed.cost!r} vs stored "
                f"{result.cost!r}"
            )
        session._result = result
    session._pending = {tuple(row) for row in record["pending_rows"]}
    session._pending_full = record["pending_full"]
    session.version = record["version"]
    session.applied_steps = record["applied_steps"]
    session.batched_steps = record["batched_steps"]
    return session


# ----------------------------------------------------------------------
# AdvisorSession checkpoints
# ----------------------------------------------------------------------
def save_session(
    session: AdvisorSession, path: str | pathlib.Path
) -> int:
    """Checkpoint one :class:`~repro.whatif.AdvisorSession`; returns bytes written."""
    records = [
        _session_record(session),
        {
            "section": "degradation",
            "events": session.degradation.to_dicts(),
        },
    ]
    payload = _serialize("advisor_session", records)
    _write_payload(path, payload)
    return len(payload.encode("utf-8"))


def restore_session(
    path: str | pathlib.Path,
    stats: PathStatistics,
    load: LoadDistribution,
    *,
    degradation: DegradationReport | None = None,
    **session_options,
) -> AdvisorSession:
    """Resurrect a checkpointed session.

    ``stats``/``load`` are templates providing the path and cost-model
    config (any pair describing the same path works — the *values* come
    from the checkpoint); ``session_options`` must match the original
    construction (``strategy`` is verified). The restored session's
    degradation log starts from the checkpointed events.
    """
    records = _load_records(path, "advisor_session")
    report = degradation if degradation is not None else DegradationReport()
    for event in _section(records, "degradation", path)["events"]:
        report.record(
            event["layer"], event["action"], event["reason"], **event["detail"]
        )
    return _restore_session_state(
        _section(records, "session", path),
        stats,
        load,
        path,
        report,
        session_options,
    )


# ----------------------------------------------------------------------
# ContinuousAdvisor checkpoints
# ----------------------------------------------------------------------
def save_advisor(
    advisor: ContinuousAdvisor, path: str | pathlib.Path
) -> int:
    """Checkpoint a :class:`~repro.trace.ContinuousAdvisor` mid-stream.

    Callable at any point of the replay — between events, at window
    boundaries, after the final flush — and captures everything the
    resumed process needs: windowing options, the session (current
    inputs, counters, last result, pending dirty rows), the aggregator's
    trailing event window and cumulative balance, the drift detector's
    reference and streak, the pending perturbation batch, the
    degradation log, and the full step timeline. Returns bytes written.
    """
    aggregator = advisor.aggregator
    detector = advisor.detector
    records: list[dict[str, Any]] = [
        {
            "section": "options",
            "window": aggregator.window,
            "slide": aggregator.slide,
            "window_seconds": aggregator.window_seconds,
            "slide_seconds": aggregator.slide_seconds,
            "rate_scale": aggregator.rate_scale,
            "track_statistics": aggregator.track_statistics,
            "deadline_ms": advisor.deadline_ms,
            "baseline_stats": _stats_values(aggregator.stats),
        },
        _session_record(advisor.session),
        {
            "section": "aggregator",
            "events": [event.to_dict() for event in aggregator._events],
            "since_emit": aggregator._since_emit,
            "seen": aggregator._seen,
            "emitted": aggregator._emitted,
            "clock": None
            if aggregator._clock == float("-inf")
            else aggregator._clock,
            "next_emit": aggregator._next_emit,
            "balance": dict(aggregator._balance),
        },
        {
            "section": "detector",
            "threshold": detector.threshold,
            "hysteresis": detector.hysteresis,
            "floor": detector.floor,
            "streak": detector.streak,
            "reference_load": None
            if detector._reference_load is None
            else _load_values(detector._reference_load),
            "reference_stats": None
            if detector._reference_stats is None
            else _stats_values(detector._reference_stats),
        },
        {
            "section": "pending",
            "perturbations": [
                perturbation.to_dict() for perturbation in advisor._pending
            ],
            "windows_held": advisor.windows_held,
        },
        {
            "section": "degradation",
            "events": advisor.degradation.to_dicts(),
        },
    ]
    records.extend(
        {"section": "step", "step": step.to_dict()} for step in advisor.steps
    )
    payload = _serialize("continuous_advisor", records)
    _write_payload(path, payload)
    return len(payload.encode("utf-8"))


def restore_advisor(
    path: str | pathlib.Path,
    stats: PathStatistics,
    load: LoadDistribution,
    *,
    degradation: DegradationReport | None = None,
    **session_options,
) -> ContinuousAdvisor:
    """Resurrect a checkpointed continuous advisor, ready to keep streaming.

    ``stats`` must be the *same baseline statistics* the original
    advisor was constructed with (verified value-for-value against the
    checkpoint — resuming against different baselines cannot be
    bit-identical and fails loudly); ``load`` provides the path scope
    for rebuilding stored loads. ``session_options`` are forwarded to
    the underlying :class:`~repro.whatif.AdvisorSession` exactly as the
    original constructor did. Feeding the restored advisor the remainder
    of the trace yields the same :class:`~repro.trace.ReplayStep`
    timeline, step for step and bit for bit, as the uninterrupted run.
    """
    records = _load_records(path, "continuous_advisor")
    options = _section(records, "options", path)
    if options["baseline_stats"] != _stats_values(stats):
        raise CheckpointError(
            f"checkpoint {path} was taken against different baseline "
            f"statistics than the ones provided"
        )

    report = degradation if degradation is not None else DegradationReport()
    for event in _section(records, "degradation", path)["events"]:
        report.record(
            event["layer"], event["action"], event["reason"], **event["detail"]
        )

    session = _restore_session_state(
        _section(records, "session", path),
        stats,
        load,
        path,
        report,
        session_options,
    )

    aggregator = WindowAggregator(
        stats,
        options["window"],
        slide=options["slide"] if options["window"] is not None else None,
        window_seconds=options["window_seconds"],
        slide_seconds=options["slide_seconds"],
        rate_scale=options["rate_scale"],
        track_statistics=options["track_statistics"],
    )
    stored = _section(records, "aggregator", path)
    for event in stored["events"]:
        aggregator._events.append(TraceEvent.from_dict(event))
    aggregator._since_emit = stored["since_emit"]
    aggregator._seen = stored["seen"]
    aggregator._emitted = stored["emitted"]
    aggregator._clock = (
        float("-inf") if stored["clock"] is None else stored["clock"]
    )
    aggregator._next_emit = stored["next_emit"]
    aggregator._balance.update(stored["balance"])

    stored = _section(records, "detector", path)
    detector = DriftDetector(
        threshold=stored["threshold"],
        hysteresis=stored["hysteresis"],
        floor=stored["floor"],
    )
    detector.streak = stored["streak"]
    if stored["reference_load"] is not None:
        detector._reference_load = _rebuild_load(
            load, stored["reference_load"]
        )
    if stored["reference_stats"] is not None:
        detector._reference_stats = _rebuild_stats(
            stats, stored["reference_stats"]
        )

    pending = _section(records, "pending", path)
    steps = [
        ReplayStep.from_dict(record["step"])
        for record in records
        if record.get("section") == "step"
    ]
    if not steps:
        raise CheckpointError(
            f"checkpoint {path} holds no replay steps (baseline missing)"
        )

    advisor = ContinuousAdvisor.__new__(ContinuousAdvisor)
    advisor.deadline_ms = options["deadline_ms"]
    advisor.degradation = report
    advisor._deadline_clock = time.monotonic
    advisor.session = session
    # The recorder travels through session_options into the restored
    # session; the advisor shares it (and re-resolves its hot-path
    # counters) exactly as __init__ would.
    advisor.recorder = session.recorder
    advisor._events_counter = advisor.recorder.counter("replay.events")
    advisor._windows_counter = advisor.recorder.counter("replay.windows")
    advisor._held_counter = advisor.recorder.counter("replay.windows_held")
    advisor._readvises_counter = advisor.recorder.counter("replay.readvises")
    advisor.aggregator = aggregator
    advisor.detector = detector
    advisor.steps = steps
    advisor.windows_held = pending["windows_held"]
    advisor._pending = [
        Perturbation.from_dict(record)
        for record in pending["perturbations"]
    ]
    return advisor


# ----------------------------------------------------------------------
# MultiPathSession checkpoints
# ----------------------------------------------------------------------
def save_multipath(
    session: MultiPathSession, path: str | pathlib.Path
) -> int:
    """Checkpoint a :class:`~repro.whatif.MultiPathSession`; returns bytes.

    One session record per path, plus the descent-regime joint-selection
    cache (its configurations and reuse counter), so a resumed
    ``optimize`` reuses — or recomputes — exactly what the original
    would have. The per-path candidate caches and the identical-question
    result cache are *not* serialized: they are pure caches whose loss
    costs time, never answers.
    """
    records: list[dict[str, Any]] = []
    for index, advisor_session in enumerate(session.sessions):
        record = _session_record(advisor_session)
        record["index"] = index
        records.append(record)
    entry = session._joint_cache.get("entry")
    records.append(
        {
            "section": "joint_cache",
            "reuses": session._joint_cache.get("reuses", 0),
            "entry": None
            if entry is None
            else {
                "key": list(entry[0]),
                "configurations": [
                    [
                        [part.start, part.end, part.organization.value]
                        for part in configuration.assignments
                    ]
                    for configuration in entry[1]
                ],
            },
        }
    )
    payload = _serialize("multipath_session", records)
    _write_payload(path, payload)
    return len(payload.encode("utf-8"))


def restore_multipath(
    path: str | pathlib.Path,
    baselines: list[tuple[PathStatistics, LoadDistribution]],
    *,
    degradation: DegradationReport | None = None,
    **session_options,
) -> MultiPathSession:
    """Resurrect a checkpointed multi-path session.

    ``baselines`` provides one ``(stats, load)`` template per path, in
    the original order (paths and cost-model configs are not
    serialized). Each per-path session is rebuilt and primed exactly as
    :func:`restore_session` does.
    """
    from repro.core.configuration import IndexConfiguration, IndexedSubpath
    from repro.organizations import IndexOrganization

    records = _load_records(path, "multipath_session")
    session_records = [
        record for record in records if record.get("section") == "session"
    ]
    if len(session_records) != len(baselines):
        raise CheckpointError(
            f"checkpoint {path} holds {len(session_records)} paths, "
            f"{len(baselines)} baselines provided"
        )
    report = degradation if degradation is not None else DegradationReport()
    sessions = [
        _restore_session_state(
            record, stats, load, path, report, dict(session_options)
        )
        for record, (stats, load) in zip(
            sorted(session_records, key=lambda record: record["index"]),
            baselines,
        )
    ]
    multipath = MultiPathSession(sessions)
    stored = _section(records, "joint_cache", path)
    multipath._joint_cache["reuses"] = stored["reuses"]
    if stored["entry"] is not None:
        multipath._joint_cache["entry"] = (
            tuple(stored["entry"]["key"]),
            [
                IndexConfiguration(
                    tuple(
                        IndexedSubpath(
                            start, end, IndexOrganization(organization)
                        )
                        for start, end, organization in configuration
                    )
                )
                for configuration in stored["entry"]["configurations"]
            ],
        )
    return multipath
