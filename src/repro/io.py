"""JSON serialization of advisor inputs.

An *advisor spec* is a single JSON document carrying everything the
selection algorithm needs — schema, path, statistics, workload, options —
so the advisor can run as a standalone tool (see :mod:`repro.cli`):

.. code-block:: json

    {
      "schema": {"classes": [
        {"name": "Person", "attributes": [
            {"name": "owns", "domain": "Vehicle", "multi_valued": true}]},
        {"name": "Vehicle", "attributes": [
            {"name": "name", "domain": "string"}]}
      ]},
      "path": "Person.owns.name",
      "statistics": {"Person": {"objects": 1000, "distinct": 100, "fanout": 2},
                      "Vehicle": {"objects": 100, "distinct": 50, "fanout": 1}},
      "workload": {"Person": {"query": 0.5, "insert": 0.1, "delete": 0.1}},
      "options": {"include_noindex": true, "page_size": 4096}
    }

Atomic domains are the strings ``integer``, ``real``, ``string`` and
``boolean``; any other domain string names a class.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.errors import ReproError
from repro.model.attribute import AtomicType, Attribute
from repro.model.path import Path
from repro.model.schema import Schema
from repro.organizations import IndexOrganization
from repro.storage.sizes import SizeModel
from repro.workload.load import LoadDistribution, LoadTriplet

_ATOMIC_NAMES = {atomic.value: atomic for atomic in AtomicType}


@dataclass(frozen=True)
class AdvisorSpec:
    """Deserialized advisor inputs."""

    stats: PathStatistics
    load: LoadDistribution
    organizations: tuple[IndexOrganization, ...] | None
    include_noindex: bool
    range_selectivity: float | None


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------
def schema_to_dict(schema: Schema) -> dict[str, Any]:
    """Schema → JSON-compatible dict."""
    classes = []
    for class_def in schema:
        attributes = [
            {
                "name": attribute.name,
                "domain": attribute.domain.value
                if isinstance(attribute.domain, AtomicType)
                else attribute.domain,
                "multi_valued": attribute.multi_valued,
            }
            for attribute in class_def.attributes.values()
        ]
        entry: dict[str, Any] = {"name": class_def.name, "attributes": attributes}
        if class_def.superclass:
            entry["superclass"] = class_def.superclass
        classes.append(entry)
    return {"classes": classes}


def schema_from_dict(data: dict[str, Any]) -> Schema:
    """JSON dict → frozen Schema."""
    try:
        classes = data["classes"]
    except (KeyError, TypeError):
        raise ReproError("schema document needs a 'classes' list") from None
    schema = Schema()
    for entry in classes:
        attributes = []
        for raw in entry.get("attributes", []):
            domain_name = raw["domain"]
            domain: AtomicType | str = _ATOMIC_NAMES.get(domain_name, domain_name)
            attributes.append(
                Attribute(
                    name=raw["name"],
                    domain=domain,
                    multi_valued=bool(raw.get("multi_valued", False)),
                )
            )
        schema.define(
            entry["name"], attributes, superclass=entry.get("superclass")
        )
    return schema.freeze()


def spec_to_dict(
    stats: PathStatistics,
    load: LoadDistribution,
    include_noindex: bool = False,
    range_selectivity: float | None = None,
) -> dict[str, Any]:
    """Advisor inputs → JSON-compatible spec document."""
    path = stats.path
    statistics = {}
    workload = {}
    for position in range(1, path.length + 1):
        for member in path.hierarchy_at(position):
            entry = stats.stats_of(member)
            statistics[member] = {
                "objects": entry.objects,
                "distinct": entry.distinct,
                "fanout": entry.fanout,
            }
            triplet = load.triplet(member)
            workload[member] = {
                "query": triplet.query,
                "insert": triplet.insert,
                "delete": triplet.delete,
            }
    options: dict[str, Any] = {
        "page_size": stats.config.sizes.page_size,
        "include_noindex": include_noindex,
    }
    if range_selectivity is not None:
        options["range_selectivity"] = range_selectivity
    return {
        "schema": schema_to_dict(path.schema),
        "path": str(path),
        "statistics": statistics,
        "workload": workload,
        "options": options,
    }


def spec_from_dict(data: dict[str, Any]) -> AdvisorSpec:
    """JSON spec document → advisor inputs."""
    for key in ("schema", "path", "statistics"):
        if key not in data:
            raise ReproError(f"advisor spec is missing {key!r}")
    schema = schema_from_dict(data["schema"])
    path = Path.parse(schema, data["path"])

    options = data.get("options", {})
    sizes = SizeModel(page_size=int(options.get("page_size", 4096)))
    config = CostModelConfig(sizes=sizes)

    per_class = {}
    for name, raw in data["statistics"].items():
        per_class[name] = ClassStats(
            objects=float(raw["objects"]),
            distinct=float(raw["distinct"]),
            fanout=float(raw.get("fanout", 1.0)),
        )
    stats = PathStatistics(path, per_class, config=config)

    triplets = {}
    for name, raw in data.get("workload", {}).items():
        triplets[name] = LoadTriplet(
            query=float(raw.get("query", 0.0)),
            insert=float(raw.get("insert", 0.0)),
            delete=float(raw.get("delete", 0.0)),
        )
    load = LoadDistribution(path, triplets)

    organizations: tuple[IndexOrganization, ...] | None = None
    if "organizations" in options:
        try:
            organizations = tuple(
                IndexOrganization(name) for name in options["organizations"]
            )
        except ValueError as error:
            raise ReproError(f"unknown organization in spec: {error}") from None

    selectivity = options.get("range_selectivity")
    return AdvisorSpec(
        stats=stats,
        load=load,
        organizations=organizations,
        include_noindex=bool(options.get("include_noindex", False)),
        range_selectivity=float(selectivity) if selectivity is not None else None,
    )


def load_spec(path: str) -> AdvisorSpec:
    """Read and parse a spec JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise ReproError(f"invalid JSON in {path}: {error}") from None
    return spec_from_dict(data)
