"""Seeded synthetic operation-trace generators.

Four workload regimes, each a different answer to "how does a production
operation stream drift?":

* ``stationary`` — per-(class, kind) event rates drawn once and held for
  the whole trace; the null hypothesis a drift detector must *not* fire
  on (beyond sampling noise);
* ``edge_drift`` — most of the event mass sits on the classes of the
  last two path positions (ingest-side churn at the leaf of the path,
  the common production pattern) and *their* rates drift epoch by epoch
  via a seeded geometric random walk;
* ``mixed_drift`` — every epoch one uniformly random (class, kind) rate
  is rescaled, so drift can land anywhere including near the path start
  (the adversarial shape for incremental recomputation);
* ``bursty`` — a stationary base interrupted by burst epochs during
  which one chosen class's rate is multiplied by ``burst_factor``.

All randomness flows through one seeded :class:`random.Random`, so a
``(path, regime, events, seed)`` tuple always reproduces the same trace
— the property the replay benchmark and the Hypothesis pinning tests
rely on. Timestamps advance by seeded exponential gaps, giving a
Poisson-like arrival process.
"""

from __future__ import annotations

import random

from repro.errors import TraceError
from repro.model.path import Path
from repro.trace.events import EVENT_KINDS, TraceEvent

#: Registered generator regimes (the ``--regime`` CLI choices).
TRACE_REGIMES = ("stationary", "edge_drift", "mixed_drift", "bursty")


def _class_masses(
    path: Path, rng: random.Random, edge_share: float | None
) -> dict[str, float]:
    """Relative event mass per scope class.

    ``edge_share`` concentrates that fraction of the total mass on the
    hierarchy members of the last two path positions; ``None`` spreads
    mass over the whole scope with random proportions.
    """
    scope = list(path.scope)
    raw = {name: rng.random() + 0.05 for name in scope}
    if edge_share is None:
        return raw
    edge_classes = set()
    for position in range(max(1, path.length - 1), path.length + 1):
        edge_classes.update(path.hierarchy_at(position))
    edge_total = sum(raw[name] for name in scope if name in edge_classes)
    other_total = sum(raw[name] for name in scope if name not in edge_classes)
    masses = {}
    for name in scope:
        if name in edge_classes:
            masses[name] = edge_share * raw[name] / edge_total
        elif other_total > 0:
            masses[name] = (1.0 - edge_share) * raw[name] / other_total
        else:
            masses[name] = 0.0
    return masses


def generate_trace(
    path: Path,
    regime: str,
    events: int,
    seed: int = 0,
    *,
    query_weight: float = 2.0,
    update_weight: float = 1.0,
    epoch: int | None = None,
    edge_share: float = 0.8,
    drift_intensity: float = 0.4,
    burst_factor: float = 8.0,
) -> list[TraceEvent]:
    """A reproducible synthetic operation trace for one path.

    Parameters
    ----------
    path:
        The path whose scope classes the events concern.
    regime:
        One of :data:`TRACE_REGIMES`.
    events:
        Number of events to generate.
    seed:
        PRNG seed; identical inputs yield identical traces.
    query_weight / update_weight:
        Relative share of queries vs updates (updates split between
        inserts and deletes, perturbed per class).
    epoch:
        Events per drift epoch (default ``max(1, events // 20)``); the
        drifting regimes mutate their rates at epoch boundaries.
    edge_share:
        ``edge_drift`` only — fraction of the event mass concentrated on
        the last two path positions (``1.0`` puts everything there,
        which keeps per-window dirty sets tight).
    drift_intensity:
        Magnitude of the per-epoch rate mutations (log-scale spread for
        the random walks).
    burst_factor:
        ``bursty`` only — rate multiplier during burst epochs.
    """
    if regime not in TRACE_REGIMES:
        raise TraceError(
            f"unknown trace regime {regime!r} "
            f"(expected one of {', '.join(TRACE_REGIMES)})"
        )
    if events < 0:
        raise TraceError(f"event count must be non-negative, got {events}")
    if not 0.0 <= edge_share <= 1.0:
        raise TraceError(f"edge share must be in [0, 1], got {edge_share}")
    if query_weight < 0 or update_weight < 0 or query_weight + update_weight == 0:
        raise TraceError(
            "query/update weights must be non-negative and not both zero"
        )
    rng = random.Random(seed)
    epoch = epoch if epoch is not None else max(1, events // 20)
    if epoch < 1:
        raise TraceError(f"epoch length must be positive, got {epoch}")

    masses = _class_masses(
        path, rng, edge_share if regime == "edge_drift" else None
    )
    query_share = query_weight / (query_weight + update_weight)
    pairs: list[tuple[str, str]] = []
    weights: list[float] = []
    for name, mass in masses.items():
        split = 0.5 * (1.0 + rng.uniform(-0.2, 0.2))
        pairs.extend((name, kind) for kind in EVENT_KINDS)
        weights.extend(
            [
                mass * query_share,
                mass * (1.0 - query_share) * split,
                mass * (1.0 - query_share) * (1.0 - split),
            ]
        )

    if not any(weight > 0 for weight in weights):
        # Reachable via edge_drift with edge_share=0 on a path whose
        # whole scope is "edge" (length <= 2): nothing can be drawn.
        raise TraceError(
            "trace regime parameters leave every event rate at zero "
            f"({regime!r} with edge_share={edge_share:g} on {path})"
        )

    edge_classes = set()
    for position in range(max(1, path.length - 1), path.length + 1):
        edge_classes.update(path.hierarchy_at(position))
    burst_target = rng.choice(sorted(path.scope))

    def mutate(epoch_index: int) -> None:
        if regime == "stationary":
            return
        if regime == "edge_drift":
            # Geometric random walk on the edge classes' rates only.
            for index, (name, _kind) in enumerate(pairs):
                if name in edge_classes:
                    weights[index] *= rng.uniform(
                        1.0 - drift_intensity, 1.0 + drift_intensity
                    )
        elif regime == "mixed_drift":
            index = rng.randrange(len(pairs))
            weights[index] *= rng.uniform(0.5, 2.0)
        elif regime == "bursty":
            # Odd epochs burst, even epochs restore the calm rates.
            factor = burst_factor if epoch_index % 2 == 1 else 1.0 / burst_factor
            for index, (name, _kind) in enumerate(pairs):
                if name == burst_target:
                    weights[index] *= factor

    trace: list[TraceEvent] = []
    timestamp = 0.0
    for count in range(events):
        if count and count % epoch == 0:
            mutate(count // epoch)
        timestamp += rng.expovariate(1.0)
        name, kind = rng.choices(pairs, weights=weights, k=1)[0]
        trace.append(TraceEvent(timestamp=timestamp, kind=kind, class_name=name))
    return trace
