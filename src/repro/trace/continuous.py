"""Continuous trace-driven advising: stream in, recommendations out.

:class:`ContinuousAdvisor` is the front door the pipeline lacked: it
consumes a raw operation stream (:class:`~repro.trace.events.TraceEvent`
by :class:`~repro.trace.events.TraceEvent`), folds it into windowed
workload estimates (:class:`~repro.trace.window.WindowAggregator`),
decides when the drift is real
(:class:`~repro.trace.drift.DriftDetector`), and only then disturbs the
incremental :class:`~repro.whatif.AdvisorSession` — handing it the
*accumulated* delta as one batch through
:meth:`~repro.whatif.AdvisorSession.apply_many`, so a burst of drifting
windows costs one dirty-set-union recompute and one search refinement,
not one per event or even one per window.

The guarantee carried over from ``repro.whatif``: at every re-advise
point the emitted :class:`ReplayStep` result is bit-identical to a
from-scratch ``advise()`` over the session's current inputs (the
Hypothesis property in ``tests/test_trace_replay.py`` pins it). Held
windows change nothing at all — the pending delta is recomputed against
the session state at each window, so skipping windows never loses
information, it only defers it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.cost_matrix import RecomputeReport
from repro.costmodel.params import PathStatistics
from repro.errors import TraceError
from repro.search import SearchResult
from repro.trace.drift import DriftDecision, DriftDetector
from repro.trace.events import TraceEvent
from repro.trace.window import WindowAggregator
from repro.whatif import AdvisorSession, Perturbation
from repro.whatif.perturbation import perturbations_between
from repro.workload.load import LoadDistribution


@dataclass(frozen=True)
class ReplayStep:
    """One re-advise point of the replay timeline.

    ``index`` 0 is the baseline recommendation before any event;
    ``window`` is the aggregator window that triggered the step
    (``None`` for the baseline and for a forced :meth:`~ContinuousAdvisor.flush`);
    ``perturbations`` is the size of the batch handed to
    :meth:`~repro.whatif.AdvisorSession.apply_many`; ``report`` is that
    batch's single :class:`~repro.core.cost_matrix.RecomputeReport`.
    """

    index: int
    window: int | None
    events_seen: int
    change: float
    perturbations: int
    report: RecomputeReport | None
    result: SearchResult
    configuration_changed: bool
    forced: bool = False

    @property
    def cost(self) -> float:
        """The recommended configuration's processing cost at this point."""
        return self.result.cost

    def describe(self) -> str:
        """One-line summary for logs."""
        origin = (
            "baseline"
            if self.window is None and not self.forced
            else ("final flush" if self.forced else f"window {self.window}")
        )
        changed = "changed" if self.configuration_changed else "unchanged"
        return (
            f"step {self.index} ({origin}, {self.events_seen} events): "
            f"cost {self.cost:.2f}, configuration {changed}"
        )


class ContinuousAdvisor:
    """Drive an incremental advisor session from an operation stream.

    Parameters
    ----------
    stats / load:
        The baseline inputs (the load is the advisor's initial workload
        model; the stream's windowed estimates drift away from it).
    window / slide / window_seconds / slide_seconds / rate_scale / track_statistics:
        Windowing knobs, see :class:`~repro.trace.window.WindowAggregator`
        (count, wall-clock and hybrid window modes).
    threshold / hysteresis:
        Drift knobs, see :class:`~repro.trace.drift.DriftDetector`.
        ``threshold="auto"`` scales the threshold with the window's
        sampling noise (:meth:`~repro.trace.drift.DriftDetector.adaptive`,
        ``~ 1/sqrt(window)``; count and hybrid modes only — a wall-clock
        window has no fixed event count to scale against).
    session_options:
        Forwarded to :class:`~repro.whatif.AdvisorSession` (``strategy``,
        ``organizations``, ``include_noindex``, ``workers``,
        ``kernel``, ...).
    """

    def __init__(
        self,
        stats: PathStatistics,
        load: LoadDistribution,
        *,
        window: int | None = None,
        slide: int | None = None,
        window_seconds: float | None = None,
        slide_seconds: float | None = None,
        rate_scale: float = 1.0,
        track_statistics: bool = False,
        threshold: float | str = 0.2,
        hysteresis: int = 2,
        **session_options,
    ) -> None:
        self.session = AdvisorSession(stats, load, **session_options)
        self.aggregator = WindowAggregator(
            stats,
            window,
            slide=slide,
            window_seconds=window_seconds,
            slide_seconds=slide_seconds,
            rate_scale=rate_scale,
            track_statistics=track_statistics,
        )
        if threshold == "auto":
            if window is None:
                raise TraceError(
                    "threshold='auto' scales with the count window; "
                    "wall-clock windows need an explicit threshold"
                )
            self.detector = DriftDetector.adaptive(
                window, hysteresis=hysteresis
            )
        elif isinstance(threshold, str):
            raise TraceError(
                f"threshold must be a number or 'auto', got {threshold!r}"
            )
        else:
            self.detector = DriftDetector(
                threshold=threshold, hysteresis=hysteresis
            )
        self.detector.reset(load, stats if track_statistics else None)
        baseline = self.session.advise()
        #: The replay timeline: one :class:`ReplayStep` per re-advise.
        self.steps: list[ReplayStep] = [
            ReplayStep(
                index=0,
                window=None,
                events_seen=0,
                change=0.0,
                perturbations=0,
                report=None,
                result=baseline,
                configuration_changed=False,
            )
        ]
        #: Windows observed without firing (the thrash the detector saved).
        self.windows_held = 0
        self._pending: list[Perturbation] = []

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def push(self, event: TraceEvent) -> ReplayStep | None:
        """Consume one event; returns a step when it caused a re-advise."""
        snapshot = self.aggregator.push(event)
        if snapshot is None:
            return None
        decision = self.detector.observe(
            snapshot.load,
            snapshot.stats if self.aggregator.track_statistics else None,
        )
        # The pending batch always describes "session state -> newest
        # window" as absolute set-deltas, so it subsumes every held
        # window before it; holding defers work, never drops it.
        self._pending = perturbations_between(
            self.session.stats, self.session.load, snapshot.stats, snapshot.load
        )
        if not decision.fired:
            self.windows_held += 1
            return None
        return self._readvise(snapshot.index, decision, forced=False)

    def process(self, events: Iterable[TraceEvent]) -> list[ReplayStep]:
        """Consume a whole event sequence; returns the new re-advise steps."""
        steps: list[ReplayStep] = []
        for event in events:
            step = self.push(event)
            if step is not None:
                steps.append(step)
        return steps

    def replay(
        self, events: Iterable[TraceEvent], *, flush: bool = True
    ) -> list[ReplayStep]:
        """Full-trace convenience: baseline + :meth:`process` + :meth:`flush`.

        Returns the complete timeline including the baseline step.
        """
        self.process(events)
        if flush:
            self.flush()
        return self.steps

    def flush(self) -> ReplayStep | None:
        """Apply any pending (held) delta now, detector notwithstanding.

        The end-of-trace step: windows the detector held back still
        carry the newest workload estimate; flushing folds it in so the
        final recommendation reflects everything the stream said.
        Returns ``None`` when nothing is pending.
        """
        if not self._pending:
            return None
        step = self._readvise(None, None, forced=True)
        self.detector.reset(
            self.session.load,
            self.session.stats if self.aggregator.track_statistics else None,
        )
        return step

    # ------------------------------------------------------------------
    # re-advising
    # ------------------------------------------------------------------
    def _readvise(
        self,
        window: int | None,
        decision: DriftDecision | None,
        forced: bool,
    ) -> ReplayStep | None:
        if not self._pending:
            # A fired decision with an empty delta cannot happen (firing
            # requires a component difference), but guard the seam.
            return None
        batch = self._pending
        self._pending = []
        report = self.session.apply_many(batch)
        result = self.session.advise()
        previous = self.steps[-1].result.configuration
        step = ReplayStep(
            index=len(self.steps),
            window=window,
            events_seen=self.aggregator.events_seen,
            change=decision.change if decision is not None else 0.0,
            perturbations=len(batch),
            report=report,
            result=result,
            configuration_changed=result.configuration != previous,
            forced=forced,
        )
        self.steps.append(step)
        return step

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def events_seen(self) -> int:
        """Total events consumed."""
        return self.aggregator.events_seen

    @property
    def windows_seen(self) -> int:
        """Windows the aggregator completed."""
        return self.aggregator.windows_emitted

    @property
    def readvise_count(self) -> int:
        """Re-advise points so far (baseline excluded)."""
        return len(self.steps) - 1

    def describe(self) -> str:
        """One-line replay summary."""
        return (
            f"{self.events_seen} events, {self.windows_seen} windows "
            f"({self.windows_held} held), {self.readvise_count} re-advises, "
            f"current cost {self.steps[-1].cost:.2f}"
        )
