"""Continuous trace-driven advising: stream in, recommendations out.

:class:`ContinuousAdvisor` is the front door the pipeline lacked: it
consumes a raw operation stream (:class:`~repro.trace.events.TraceEvent`
by :class:`~repro.trace.events.TraceEvent`), folds it into windowed
workload estimates (:class:`~repro.trace.window.WindowAggregator`),
decides when the drift is real
(:class:`~repro.trace.drift.DriftDetector`), and only then disturbs the
incremental :class:`~repro.whatif.AdvisorSession` — handing it the
*accumulated* delta as one batch through
:meth:`~repro.whatif.AdvisorSession.apply_many`, so a burst of drifting
windows costs one dirty-set-union recompute and one search refinement,
not one per event or even one per window.

The guarantee carried over from ``repro.whatif``: at every re-advise
point the emitted :class:`ReplayStep` result is bit-identical to a
from-scratch ``advise()`` over the session's current inputs (the
Hypothesis property in ``tests/test_trace_replay.py`` pins it). Held
windows change nothing at all — the pending delta is recomputed against
the session state at each window, so skipping windows never loses
information, it only defers it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.configuration import IndexConfiguration, IndexedSubpath
from repro.core.cost_matrix import RecomputeReport
from repro.costmodel.params import PathStatistics
from repro.errors import TraceError
from repro.obs.recorder import resolve_recorder
from repro.organizations import IndexOrganization
from repro.resilience import Deadline, DegradationReport
from repro.search import SearchResult
from repro.trace.drift import DriftDecision, DriftDetector
from repro.trace.events import TraceEvent
from repro.trace.window import WindowAggregator
from repro.whatif import AdvisorSession, Perturbation
from repro.whatif.perturbation import perturbations_between
from repro.workload.load import LoadDistribution


def _jsonify(value: Any) -> Any:
    """A deterministic JSON-safe projection of a result payload.

    Tuples become lists (what a JSON round-trip would do anyway) and
    anything JSON cannot express becomes its ``str`` — so serialized
    timelines compare stably between a live run and a checkpoint resume.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    return str(value)


@dataclass(frozen=True)
class ReplayStep:
    """One re-advise point of the replay timeline.

    ``index`` 0 is the baseline recommendation before any event;
    ``window`` is the aggregator window that triggered the step
    (``None`` for the baseline and for a forced :meth:`~ContinuousAdvisor.flush`);
    ``perturbations`` is the size of the batch handed to
    :meth:`~repro.whatif.AdvisorSession.apply_many`; ``report`` is that
    batch's single :class:`~repro.core.cost_matrix.RecomputeReport`.
    ``rung`` names the degradation-ladder rung that produced the result:
    ``"exact"`` in normal operation, ``"greedy_beam:<width>"`` or
    ``"last_known_good"`` when a deadline forced a fallback.
    """

    index: int
    window: int | None
    events_seen: int
    change: float
    perturbations: int
    report: RecomputeReport | None
    result: SearchResult
    configuration_changed: bool
    forced: bool = False
    rung: str = "exact"

    @property
    def cost(self) -> float:
        """The recommended configuration's processing cost at this point."""
        return self.result.cost

    def describe(self) -> str:
        """One-line summary for logs."""
        origin = (
            "baseline"
            if self.window is None and not self.forced
            else ("final flush" if self.forced else f"window {self.window}")
        )
        changed = "changed" if self.configuration_changed else "unchanged"
        rung = "" if self.rung == "exact" else f", rung {self.rung}"
        return (
            f"step {self.index} ({origin}, {self.events_seen} events): "
            f"cost {self.cost:.2f}, configuration {changed}{rung}"
        )

    def to_dict(self) -> dict[str, Any]:
        """The JSON object form accepted by :meth:`from_dict`.

        Complete enough to resurrect the step bit-identically: the
        result's configuration is spelled as ``[start, end, org]``
        triples and float costs ride through JSON's exact ``repr``
        round-trip for doubles. Checkpoints and the replay CLI both
        serialize steps through here, so the two never drift apart.
        """
        report = None
        if self.report is not None:
            report = {
                "mode": self.report.mode,
                "reason": self.report.reason,
                "recomputed_rows": [list(row) for row in self.report.recomputed_rows],
                "patched_rows": [list(row) for row in self.report.patched_rows],
                "total_rows": self.report.total_rows,
                "kernel_slice_rows": self.report.kernel_slice_rows,
                "kernel_fallback_reason": self.report.kernel_fallback_reason,
            }
        return {
            "index": self.index,
            "window": self.window,
            "events_seen": self.events_seen,
            "change": self.change,
            "perturbations": self.perturbations,
            "forced": self.forced,
            "rung": self.rung,
            "configuration_changed": self.configuration_changed,
            "report": report,
            "result": {
                "configuration": [
                    [part.start, part.end, part.organization.value]
                    for part in self.result.configuration.assignments
                ],
                "cost": self.result.cost,
                "evaluated": self.result.evaluated,
                "pruned": self.result.pruned,
                "strategy": self.result.strategy,
                "trace": _jsonify(self.result.trace),
                "extras": _jsonify(self.result.extras),
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ReplayStep":
        """Rebuild a step from its :meth:`to_dict` form."""
        report = None
        if data.get("report") is not None:
            raw = data["report"]
            report = RecomputeReport(
                mode=raw["mode"],
                reason=raw["reason"],
                recomputed_rows=tuple(
                    tuple(row) for row in raw["recomputed_rows"]
                ),
                patched_rows=tuple(tuple(row) for row in raw["patched_rows"]),
                total_rows=raw["total_rows"],
                # Tolerant defaults: checkpoints written before the kernel
                # counters existed resurrect with the dataclass defaults.
                kernel_slice_rows=raw.get("kernel_slice_rows", 0),
                kernel_fallback_reason=raw.get("kernel_fallback_reason"),
            )
        raw_result = data["result"]
        result = SearchResult(
            configuration=IndexConfiguration(
                tuple(
                    IndexedSubpath(start, end, IndexOrganization(organization))
                    for start, end, organization in raw_result["configuration"]
                )
            ),
            cost=raw_result["cost"],
            evaluated=raw_result["evaluated"],
            pruned=raw_result["pruned"],
            trace=list(raw_result["trace"]),
            strategy=raw_result["strategy"],
            extras=dict(raw_result["extras"]),
        )
        return cls(
            index=data["index"],
            window=data["window"],
            events_seen=data["events_seen"],
            change=data["change"],
            perturbations=data["perturbations"],
            report=report,
            result=result,
            configuration_changed=data["configuration_changed"],
            forced=data["forced"],
            rung=data.get("rung", "exact"),
        )


class ContinuousAdvisor:
    """Drive an incremental advisor session from an operation stream.

    Parameters
    ----------
    stats / load:
        The baseline inputs (the load is the advisor's initial workload
        model; the stream's windowed estimates drift away from it).
    window / slide / window_seconds / slide_seconds / rate_scale / track_statistics:
        Windowing knobs, see :class:`~repro.trace.window.WindowAggregator`
        (count, wall-clock and hybrid window modes).
    threshold / hysteresis:
        Drift knobs, see :class:`~repro.trace.drift.DriftDetector`.
        ``threshold="auto"`` scales the threshold with the window's
        sampling noise (:meth:`~repro.trace.drift.DriftDetector.adaptive`,
        ``~ 1/sqrt(window)``; count and hybrid modes only — a wall-clock
        window has no fixed event count to scale against).
    deadline_ms:
        Per-re-advise wall-clock budget in milliseconds; ``None``
        (default) leaves every re-advise exact. When set, each
        :meth:`~repro.whatif.AdvisorSession.advise` call gets a fresh
        :class:`~repro.resilience.Deadline` and may answer from the
        degradation ladder instead of the exact search; the emitted
        step's ``rung`` says which rung answered.
    degradation:
        An optional :class:`~repro.resilience.DegradationReport` shared
        with the session — every fallback anywhere in the stack
        (deadline rungs, serial matrix fallbacks, kernel downgrades)
        lands in it. One is created when omitted; read it at
        ``advisor.degradation``.
    recorder:
        An optional :class:`~repro.obs.Recorder` shared with the
        session: stream counters (``replay.events``, ``replay.windows``,
        ``replay.windows_held``, ``replay.readvises``, per-rung
        ``replay.rung``) plus the session's spans land in one profile.
        The hot push path pays one pre-resolved counter ``add`` per
        event; with the default ``None`` that is a no-op call.
    session_options:
        Forwarded to :class:`~repro.whatif.AdvisorSession` (``strategy``,
        ``organizations``, ``include_noindex``, ``workers``,
        ``kernel``, ...).
    """

    def __init__(
        self,
        stats: PathStatistics,
        load: LoadDistribution,
        *,
        window: int | None = None,
        slide: int | None = None,
        window_seconds: float | None = None,
        slide_seconds: float | None = None,
        rate_scale: float = 1.0,
        track_statistics: bool = False,
        threshold: float | str = 0.2,
        hysteresis: int = 2,
        deadline_ms: float | None = None,
        degradation: DegradationReport | None = None,
        recorder=None,
        **session_options,
    ) -> None:
        self.deadline_ms = deadline_ms
        #: Every fallback taken anywhere in the stack, shared with the
        #: session (and through it the matrix layer).
        self.degradation = (
            degradation if degradation is not None else DegradationReport()
        )
        #: Tracing spans and metrics, shared with the session.
        self.recorder = resolve_recorder(recorder)
        # Counters on the per-event hot path are resolved once here, so
        # push() pays one bound-method call per event instead of a
        # registry lookup (a no-op singleton when recording is off).
        self._events_counter = self.recorder.counter("replay.events")
        self._windows_counter = self.recorder.counter("replay.windows")
        self._held_counter = self.recorder.counter("replay.windows_held")
        self._readvises_counter = self.recorder.counter("replay.readvises")
        #: The clock deadlines are measured against; tests and the fault
        #: harness substitute a fake to force deterministic expiry.
        self._deadline_clock = time.monotonic
        self.session = AdvisorSession(
            stats,
            load,
            degradation=self.degradation,
            recorder=self.recorder,
            **session_options,
        )
        self.aggregator = WindowAggregator(
            stats,
            window,
            slide=slide,
            window_seconds=window_seconds,
            slide_seconds=slide_seconds,
            rate_scale=rate_scale,
            track_statistics=track_statistics,
        )
        if threshold == "auto":
            if window is None:
                raise TraceError(
                    "threshold='auto' scales with the count window; "
                    "wall-clock windows need an explicit threshold"
                )
            self.detector = DriftDetector.adaptive(
                window, hysteresis=hysteresis
            )
        elif isinstance(threshold, str):
            raise TraceError(
                f"threshold must be a number or 'auto', got {threshold!r}"
            )
        else:
            self.detector = DriftDetector(
                threshold=threshold, hysteresis=hysteresis
            )
        self.detector.reset(load, stats if track_statistics else None)
        baseline = self._advise()
        #: The replay timeline: one :class:`ReplayStep` per re-advise.
        self.steps: list[ReplayStep] = [
            ReplayStep(
                index=0,
                window=None,
                events_seen=0,
                change=0.0,
                perturbations=0,
                report=None,
                result=baseline,
                configuration_changed=False,
                rung=baseline.extras.get("rung", "exact"),
            )
        ]
        #: Windows observed without firing (the thrash the detector saved).
        self.windows_held = 0
        self._pending: list[Perturbation] = []

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def push(self, event: TraceEvent) -> ReplayStep | None:
        """Consume one event; returns a step when it caused a re-advise."""
        self._events_counter.add()
        snapshot = self.aggregator.push(event)
        if snapshot is None:
            return None
        self._windows_counter.add()
        decision = self.detector.observe(
            snapshot.load,
            snapshot.stats if self.aggregator.track_statistics else None,
        )
        # The pending batch always describes "session state -> newest
        # window" as absolute set-deltas, so it subsumes every held
        # window before it; holding defers work, never drops it.
        self._pending = perturbations_between(
            self.session.stats, self.session.load, snapshot.stats, snapshot.load
        )
        if not decision.fired:
            self.windows_held += 1
            self._held_counter.add()
            return None
        return self._readvise(snapshot.index, decision, forced=False)

    def process(self, events: Iterable[TraceEvent]) -> list[ReplayStep]:
        """Consume a whole event sequence; returns the new re-advise steps."""
        steps: list[ReplayStep] = []
        for event in events:
            step = self.push(event)
            if step is not None:
                steps.append(step)
        return steps

    def replay(
        self, events: Iterable[TraceEvent], *, flush: bool = True
    ) -> list[ReplayStep]:
        """Full-trace convenience: baseline + :meth:`process` + :meth:`flush`.

        Returns the complete timeline including the baseline step.
        """
        self.process(events)
        if flush:
            self.flush()
        return self.steps

    def flush(self) -> ReplayStep | None:
        """Apply any pending (held) delta now, detector notwithstanding.

        The end-of-trace step: windows the detector held back still
        carry the newest workload estimate; flushing folds it in so the
        final recommendation reflects everything the stream said.
        Returns ``None`` when nothing is pending.
        """
        if not self._pending:
            return None
        step = self._readvise(None, None, forced=True)
        self.detector.reset(
            self.session.load,
            self.session.stats if self.aggregator.track_statistics else None,
        )
        return step

    # ------------------------------------------------------------------
    # re-advising
    # ------------------------------------------------------------------
    def _readvise(
        self,
        window: int | None,
        decision: DriftDecision | None,
        forced: bool,
    ) -> ReplayStep | None:
        if not self._pending:
            # A fired decision with an empty delta cannot happen (firing
            # requires a component difference), but guard the seam.
            return None
        batch = self._pending
        self._pending = []
        with self.recorder.span(
            "replay.readvise", batch=len(batch), forced=forced
        ):
            report = self.session.apply_many(batch)
            result = self._advise()
        previous = self.steps[-1].result.configuration
        step = ReplayStep(
            index=len(self.steps),
            window=window,
            events_seen=self.aggregator.events_seen,
            change=decision.change if decision is not None else 0.0,
            perturbations=len(batch),
            report=report,
            result=result,
            configuration_changed=result.configuration != previous,
            forced=forced,
            rung=result.extras.get("rung", "exact"),
        )
        self._readvises_counter.add()
        if step.rung != "exact":
            self.recorder.counter("replay.rung", rung=step.rung).add()
        self.steps.append(step)
        return step

    def _advise(self) -> SearchResult:
        """One (possibly deadline-bounded) advise over the session."""
        if self.deadline_ms is None:
            return self.session.advise()
        return self.session.advise(
            deadline=Deadline.after_ms(
                self.deadline_ms, clock=self._deadline_clock
            )
        )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def events_seen(self) -> int:
        """Total events consumed."""
        return self.aggregator.events_seen

    @property
    def windows_seen(self) -> int:
        """Windows the aggregator completed."""
        return self.aggregator.windows_emitted

    @property
    def readvise_count(self) -> int:
        """Re-advise points so far (baseline excluded)."""
        return len(self.steps) - 1

    def describe(self) -> str:
        """One-line replay summary."""
        return (
            f"{self.events_seen} events, {self.windows_seen} windows "
            f"({self.windows_held} held), {self.readvise_count} re-advises, "
            f"current cost {self.steps[-1].cost:.2f}"
        )
