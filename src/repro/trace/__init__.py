"""Continuous trace-driven advising (the ``repro.trace`` subsystem).

Every layer below this one is incremental — matrix recomputes report
exact dirty sets, the dynamic program refines in place, multi-path
candidate sets cache per session — but all of it still expected a
hand-authored workload. This package supplies the missing front door:
the advisor as a *consumer of operation streams*, the way production
index managers work.

The pipeline, stage by stage:

* :class:`TraceEvent` + JSONL I/O (:func:`read_trace` /
  :func:`write_trace`) — the raw stream: queries, insertions and
  deletions on the path's scope classes, timestamped;
* :func:`generate_trace` — seeded synthetic streams in four regimes
  (:data:`TRACE_REGIMES`: stationary, edge-drift, mixed-drift, bursty);
* :class:`WindowAggregator` — count-based sliding/tumbling windows
  folding events into :class:`~repro.workload.load.LoadDistribution`
  estimates (and optional statistics drift);
* :class:`DriftDetector` — relative-change thresholds with hysteresis,
  deciding *when* a re-advise is warranted;
* :class:`ContinuousAdvisor` — drives an incremental
  :class:`~repro.whatif.AdvisorSession` through batched
  :meth:`~repro.whatif.AdvisorSession.apply_many` deltas and emits the
  :class:`ReplayStep` timeline of recommendation changes.

Quickstart::

    from repro.trace import ContinuousAdvisor, generate_trace

    trace = generate_trace(stats.path, "edge_drift", events=5000, seed=7)
    advisor = ContinuousAdvisor(stats, load, window=200, threshold=0.3)
    advisor.replay(trace)
    for step in advisor.steps:
        print(step.describe())

The CLI front ends are ``python -m repro trace`` (generate a JSONL
stream) and ``python -m repro replay`` (drive a spec through one).
"""

from repro.trace.continuous import ContinuousAdvisor, ReplayStep
from repro.trace.drift import DriftDecision, DriftDetector
from repro.trace.events import (
    EVENT_KINDS,
    ON_ERROR_POLICIES,
    TraceEvent,
    TraceReadReport,
    iter_trace,
    read_trace,
    write_trace,
)
from repro.trace.generate import TRACE_REGIMES, generate_trace
from repro.trace.window import WindowAggregator, WindowSnapshot

__all__ = [
    "ContinuousAdvisor",
    "DriftDecision",
    "DriftDetector",
    "EVENT_KINDS",
    "ON_ERROR_POLICIES",
    "ReplayStep",
    "TRACE_REGIMES",
    "TraceEvent",
    "TraceReadReport",
    "WindowAggregator",
    "WindowSnapshot",
    "generate_trace",
    "iter_trace",
    "read_trace",
    "write_trace",
]
