"""The operation-stream event model and its JSONL persistence.

A production index manager never sees a hand-authored
:class:`~repro.workload.load.LoadDistribution`; it sees a *stream* of
operations — queries against the path's ending attribute with respect to
some class, and object insertions/deletions on a class — and must mine
its workload model out of that stream. A :class:`TraceEvent` is one such
operation: a kind (one of :data:`EVENT_KINDS`, matching the load-triplet
components ``(α, β, γ)`` of Section 3.2), the scope class it concerns,
and a timestamp.

Traces are persisted as JSONL (one compact JSON object per line), the
interchange format the ``python -m repro trace`` / ``replay``
subcommands read and write. Parsing is strict — an unknown kind, a
negative or non-finite timestamp, or a malformed line raises
:class:`~repro.errors.TraceError` with the offending line number — so a
corrupted trace fails loudly instead of silently skewing the windowed
workload estimates downstream.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import TraceError

#: Event kinds, aligned with the load-triplet components: a ``query``
#: against the ending attribute w.r.t. the class, an ``insert`` of an
#: object of the class, a ``delete`` of an object of the class.
EVENT_KINDS = ("query", "insert", "delete")


@dataclass(frozen=True)
class TraceEvent:
    """One operation of the stream: kind, scope class, timestamp."""

    timestamp: float
    kind: str
    class_name: str

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise TraceError(
                f"unknown event kind {self.kind!r} "
                f"(expected one of {', '.join(EVENT_KINDS)})"
            )
        if not isinstance(self.timestamp, (int, float)) or not (
            0.0 <= float(self.timestamp) < math.inf
        ):
            raise TraceError(
                f"event timestamp must be a finite non-negative number, "
                f"got {self.timestamp!r}"
            )
        if not self.class_name or not isinstance(self.class_name, str):
            raise TraceError(
                f"event class name must be a non-empty string, "
                f"got {self.class_name!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        """The JSONL object form accepted by :meth:`from_dict`."""
        return {"ts": self.timestamp, "kind": self.kind, "class": self.class_name}

    @classmethod
    def from_dict(cls, data: Any) -> "TraceEvent":
        """Parse one JSONL object: ``{"ts", "kind", "class"}``."""
        if not isinstance(data, dict):
            raise TraceError(
                f"trace event must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"ts", "kind", "class"}
        if unknown:
            raise TraceError(f"unknown trace event keys: {sorted(unknown)}")
        try:
            timestamp = data["ts"]
            kind = data["kind"]
            class_name = data["class"]
        except KeyError as error:
            raise TraceError(
                f"trace event missing required key {error}"
            ) from None
        if isinstance(timestamp, bool) or not isinstance(timestamp, (int, float)):
            raise TraceError(
                f"trace event 'ts' must be a number, got {timestamp!r}"
            )
        return cls(timestamp=float(timestamp), kind=kind, class_name=class_name)


def write_trace(events: Iterable[TraceEvent], path: str | pathlib.Path) -> int:
    """Write a trace as JSONL; returns the number of events written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


#: Valid ``on_error`` policies for :func:`iter_trace`/:func:`read_trace`.
ON_ERROR_POLICIES = ("raise", "skip", "collect")


@dataclass
class TraceReadReport:
    """What a tolerant trace read skipped (and, optionally, why).

    Filled in by :func:`iter_trace` under ``on_error="skip"`` or
    ``"collect"``: ``events`` counts the lines that parsed, ``skipped``
    holds one ``(line_number, message)`` pair per rejected line (the
    message is empty under ``"skip"``, the full parse error under
    ``"collect"``). A replay that silently lost lines is exactly the
    failure mode this report exists to prevent.
    """

    events: int = 0
    skipped: list[tuple[int, str]] = field(default_factory=list)

    @property
    def skipped_lines(self) -> list[int]:
        """Just the rejected line numbers, in file order."""
        return [number for number, _message in self.skipped]

    def describe(self) -> str:
        """One line: ``"312 events, 2 lines skipped (7, 119)"``."""
        if not self.skipped:
            return f"{self.events} events, 0 lines skipped"
        lines = ", ".join(str(number) for number in self.skipped_lines)
        return (
            f"{self.events} events, {len(self.skipped)} "
            f"line{'s' if len(self.skipped) != 1 else ''} skipped ({lines})"
        )


def iter_trace(
    path: str | pathlib.Path,
    *,
    on_error: str = "raise",
    report: TraceReadReport | None = None,
) -> Iterator[TraceEvent]:
    """Stream the events of a JSONL trace file, strictly validated.

    Blank lines are skipped (a trailing newline is not an event). What
    happens to any *other* malformed line is the ``on_error`` policy:

    * ``"raise"`` (default, unchanged behaviour) — raise
      :class:`~repro.errors.TraceError` naming the line number;
    * ``"skip"`` — drop the line, recording its line number in
      ``report`` when one is given;
    * ``"collect"`` — like ``"skip"`` but also records the parse error
      message per line.

    Under a tolerant policy, pass a :class:`TraceReadReport` to learn
    what was dropped — the generator cannot return it.
    """
    if on_error not in ON_ERROR_POLICIES:
        raise TraceError(
            f"unknown on_error policy {on_error!r} "
            f"(expected one of {', '.join(ON_ERROR_POLICIES)})"
        )

    def reject(number: int, message: str) -> None:
        if on_error == "raise":
            raise TraceError(message) from None
        if report is not None:
            report.skipped.append(
                (number, message if on_error == "collect" else "")
            )

    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                data = json.loads(text)
            except json.JSONDecodeError as error:
                reject(number, f"{path}:{number}: invalid JSON: {error.msg}")
                continue
            try:
                event = TraceEvent.from_dict(data)
            except TraceError as error:
                reject(number, f"{path}:{number}: {error}")
                continue
            if report is not None:
                report.events += 1
            yield event


def read_trace(
    path: str | pathlib.Path,
    *,
    on_error: str = "raise",
    report: TraceReadReport | None = None,
) -> list[TraceEvent]:
    """Load a whole JSONL trace into memory (see :func:`iter_trace`)."""
    return list(iter_trace(path, on_error=on_error, report=report))
