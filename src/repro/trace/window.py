"""Windowed aggregation: operation streams → advisor inputs.

A :class:`WindowAggregator` folds a stream of
:class:`~repro.trace.events.TraceEvent`\\ s into the inputs the advisor
pipeline consumes: per-window event counts become a
:class:`~repro.workload.load.LoadDistribution` (frequency = count /
window size, times ``rate_scale`` — an exact float ratio, so two
aggregations of the same events are bit-identical), and the cumulative
insert/delete balance optionally becomes an adjusted
:class:`~repro.costmodel.params.PathStatistics` (``track_statistics``),
clamped through the normal validating constructors so a drifting stream
can never produce inputs the cost model rejects.

Windows are **count-based** (every ``slide`` events the trailing
``window`` events are summarized), which keeps replay deterministic and
independent of wall-clock binning: ``slide == window`` gives tumbling
windows, ``slide < window`` sliding ones.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.costmodel.params import ClassStats, PathStatistics
from repro.errors import TraceError
from repro.trace.events import TraceEvent
from repro.workload.load import LoadDistribution, LoadTriplet


@dataclass(frozen=True)
class WindowSnapshot:
    """One completed window: its span plus the derived advisor inputs."""

    index: int
    events: int
    first_timestamp: float
    last_timestamp: float
    load: LoadDistribution
    stats: PathStatistics

    def describe(self) -> str:
        """One-line summary for logs and tables."""
        return (
            f"window {self.index}: {self.events} events "
            f"[{self.first_timestamp:.2f}, {self.last_timestamp:.2f}]"
        )


class WindowAggregator:
    """Folds trace events into per-window ``(load, stats)`` snapshots.

    Parameters
    ----------
    stats:
        The path statistics the stream describes; the path's scope
        validates event classes, and ``track_statistics`` adjusts a copy
        per window.
    window:
        Events summarized per snapshot.
    slide:
        Events between snapshots (default ``window`` — tumbling).
        Must not exceed ``window``.
    rate_scale:
        Multiplier from per-event shares to load frequencies: a class
        with ``c`` events of one kind in a window gets frequency
        ``rate_scale * c / window``.
    track_statistics:
        When true, the cumulative ``insert - delete`` balance of every
        class adjusts its ``objects`` count in the emitted statistics
        (``distinct`` is clamped to stay consistent); when false the
        original statistics object is passed through untouched.
    """

    def __init__(
        self,
        stats: PathStatistics,
        window: int,
        *,
        slide: int | None = None,
        rate_scale: float = 1.0,
        track_statistics: bool = False,
    ) -> None:
        if window < 1:
            raise TraceError(f"window size must be positive, got {window}")
        slide = window if slide is None else slide
        if not 1 <= slide <= window:
            raise TraceError(
                f"slide must be in 1..window ({window}), got {slide}"
            )
        if not rate_scale > 0:
            raise TraceError(f"rate scale must be positive, got {rate_scale}")
        self.stats = stats
        self.path = stats.path
        self.window = window
        self.slide = slide
        self.rate_scale = rate_scale
        self.track_statistics = track_statistics
        self._scope = set(self.path.scope)
        self._events: deque[TraceEvent] = deque(maxlen=window)
        self._since_emit = 0
        self._seen = 0
        self._emitted = 0
        #: Cumulative insert - delete balance per class (whole stream).
        self._balance: Counter[str] = Counter()

    @property
    def events_seen(self) -> int:
        """Total events pushed so far."""
        return self._seen

    @property
    def windows_emitted(self) -> int:
        """Snapshots produced so far."""
        return self._emitted

    def push(self, event: TraceEvent) -> WindowSnapshot | None:
        """Fold one event; returns a snapshot when a window completes.

        The first snapshot is emitted once ``window`` events arrived;
        subsequent ones every ``slide`` events.
        """
        if event.class_name not in self._scope:
            raise TraceError(
                f"event class {event.class_name!r} is not in "
                f"scope({self.path})"
            )
        self._events.append(event)
        self._seen += 1
        if event.kind == "insert":
            self._balance[event.class_name] += 1
        elif event.kind == "delete":
            self._balance[event.class_name] -= 1
        self._since_emit += 1
        if len(self._events) < self.window:
            return None
        emit_every = self.window if self._emitted == 0 else self.slide
        if self._since_emit < emit_every:
            return None
        self._since_emit = 0
        return self._snapshot()

    def feed(self, events: Iterable[TraceEvent]) -> Iterator[WindowSnapshot]:
        """Push a whole event sequence, yielding completed snapshots."""
        for event in events:
            snapshot = self.push(event)
            if snapshot is not None:
                yield snapshot

    # ------------------------------------------------------------------
    # snapshot assembly
    # ------------------------------------------------------------------
    def _snapshot(self) -> WindowSnapshot:
        counts: Counter[tuple[str, str]] = Counter()
        for event in self._events:
            counts[(event.class_name, event.kind)] += 1
        triplets: dict[str, LoadTriplet] = {}
        for name in self.path.scope:
            query = counts.get((name, "query"), 0)
            insert = counts.get((name, "insert"), 0)
            delete = counts.get((name, "delete"), 0)
            if query or insert or delete:
                triplets[name] = LoadTriplet(
                    query=self.rate_scale * query / self.window,
                    insert=self.rate_scale * insert / self.window,
                    delete=self.rate_scale * delete / self.window,
                )
        load = LoadDistribution(self.path, triplets)
        snapshot = WindowSnapshot(
            index=self._emitted,
            events=len(self._events),
            first_timestamp=self._events[0].timestamp,
            last_timestamp=self._events[-1].timestamp,
            load=load,
            stats=self._adjusted_statistics(),
        )
        self._emitted += 1
        return snapshot

    def _adjusted_statistics(self) -> PathStatistics:
        """Statistics with the cumulative object balance folded in."""
        if not self.track_statistics or not any(self._balance.values()):
            return self.stats
        per_class: dict[str, ClassStats] = {}
        changed = False
        for position in range(1, self.stats.length + 1):
            for member in self.stats.members(position):
                current = self.stats.stats_of(member)
                balance = self._balance.get(member, 0)
                if balance == 0:
                    per_class[member] = current
                    continue
                # Never let a class drop below one object (the advisor's
                # inputs describe a populated path), and keep distinct
                # within the validating constructor's bound.
                objects = max(1.0, current.objects + balance)
                cap = objects * max(current.fanout, 1.0)
                distinct = max(1.0, min(current.distinct, cap))
                per_class[member] = ClassStats(
                    objects=objects, distinct=distinct, fanout=current.fanout
                )
                changed = True
        if not changed:
            return self.stats
        return PathStatistics(self.stats.path, per_class, self.stats.config)
