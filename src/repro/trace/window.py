"""Windowed aggregation: operation streams → advisor inputs.

A :class:`WindowAggregator` folds a stream of
:class:`~repro.trace.events.TraceEvent`\\ s into the inputs the advisor
pipeline consumes: per-window event counts become a
:class:`~repro.workload.load.LoadDistribution` (frequency = count /
window size, times ``rate_scale`` — an exact float ratio, so two
aggregations of the same events are bit-identical), and the cumulative
insert/delete balance optionally becomes an adjusted
:class:`~repro.costmodel.params.PathStatistics` (``track_statistics``),
clamped through the normal validating constructors so a drifting stream
can never produce inputs the cost model rejects.

Three window modes are supported, all deterministic replays of the event
stream (no reading of real clocks — only event timestamps):

* **count** (``window=``): every ``slide`` events the trailing ``window``
  events are summarized; ``slide == window`` gives tumbling windows,
  ``slide < window`` sliding ones.
* **wall-clock** (``window_seconds=``): every ``slide_seconds`` of
  event-timestamp progress the events of the trailing ``window_seconds``
  are summarized, with frequencies per second of window span — the right
  mode when the stream's *rate* carries the signal (a burst of 1000
  events in a second should read as a rate spike, not as 10 ordinary
  count windows).
* **hybrid** (both): the count cadence and denominator, but events older
  than ``window_seconds`` are evicted from the trailing window first —
  in dense traffic it behaves exactly like a count window, while after a
  lull the estimate only reflects fresh events instead of averaging over
  an arbitrarily long gap.
"""

from __future__ import annotations

import math
from collections import Counter, deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.costmodel.params import ClassStats, PathStatistics
from repro.errors import TraceError
from repro.trace.events import TraceEvent
from repro.workload.load import LoadDistribution, LoadTriplet


@dataclass(frozen=True)
class WindowSnapshot:
    """One completed window: its span plus the derived advisor inputs."""

    index: int
    events: int
    first_timestamp: float
    last_timestamp: float
    load: LoadDistribution
    stats: PathStatistics

    def describe(self) -> str:
        """One-line summary for logs and tables."""
        return (
            f"window {self.index}: {self.events} events "
            f"[{self.first_timestamp:.2f}, {self.last_timestamp:.2f}]"
        )


class WindowAggregator:
    """Folds trace events into per-window ``(load, stats)`` snapshots.

    Parameters
    ----------
    stats:
        The path statistics the stream describes; the path's scope
        validates event classes, and ``track_statistics`` adjusts a copy
        per window.
    window:
        Events summarized per snapshot (count and hybrid modes); omit
        for pure wall-clock windows.
    slide:
        Events between snapshots (default ``window`` — tumbling).
        Must not exceed ``window``. Count and hybrid modes only.
    window_seconds:
        Wall-clock span of the trailing window, in event-timestamp
        seconds. Alone it selects wall-clock mode (frequencies are
        ``rate_scale * count / window_seconds``); combined with
        ``window`` it selects hybrid mode (count cadence and
        denominator, but events older than ``window_seconds`` are
        evicted before each snapshot).
    slide_seconds:
        Timestamp progress between wall-clock snapshots (default
        ``window_seconds`` — tumbling). Wall-clock mode only.
    rate_scale:
        Multiplier from per-event shares to load frequencies: a class
        with ``c`` events of one kind in a window gets frequency
        ``rate_scale * c / window`` (count and hybrid modes) or
        ``rate_scale * c / window_seconds`` (wall-clock mode).
    track_statistics:
        When true, the cumulative ``insert - delete`` balance of every
        class adjusts its ``objects`` count in the emitted statistics
        (``distinct`` is clamped to stay consistent); when false the
        original statistics object is passed through untouched.
    """

    def __init__(
        self,
        stats: PathStatistics,
        window: int | None = None,
        *,
        slide: int | None = None,
        rate_scale: float = 1.0,
        track_statistics: bool = False,
        window_seconds: float | None = None,
        slide_seconds: float | None = None,
    ) -> None:
        if window is None and window_seconds is None:
            raise TraceError(
                "a window is required: pass window= (events), "
                "window_seconds= (wall clock), or both (hybrid)"
            )
        if window is not None:
            if window < 1:
                raise TraceError(f"window size must be positive, got {window}")
            slide = window if slide is None else slide
            if not 1 <= slide <= window:
                raise TraceError(
                    f"slide must be in 1..window ({window}), got {slide}"
                )
        elif slide is not None:
            raise TraceError(
                "slide= (events) requires window=; wall-clock windows "
                "slide with slide_seconds="
            )
        if window_seconds is not None:
            if not window_seconds > 0:
                raise TraceError(
                    f"window_seconds must be positive, got {window_seconds}"
                )
            if window is None:
                slide_seconds = (
                    window_seconds if slide_seconds is None else slide_seconds
                )
                if not 0 < slide_seconds <= window_seconds:
                    raise TraceError(
                        f"slide_seconds must be in (0, window_seconds "
                        f"({window_seconds})], got {slide_seconds}"
                    )
            elif slide_seconds is not None:
                raise TraceError(
                    "hybrid windows emit on the count cadence; "
                    "slide_seconds= applies to wall-clock mode only"
                )
        if not rate_scale > 0:
            raise TraceError(f"rate scale must be positive, got {rate_scale}")
        self.stats = stats
        self.path = stats.path
        self.window = window
        self.slide = slide
        self.window_seconds = window_seconds
        self.slide_seconds = slide_seconds
        self.rate_scale = rate_scale
        self.track_statistics = track_statistics
        self._scope = set(self.path.scope)
        self._events: deque[TraceEvent] = deque(maxlen=window)
        self._since_emit = 0
        self._seen = 0
        self._emitted = 0
        # Wall-clock bookkeeping: the stream's high-water timestamp and
        # the next emission boundary (set by the first event).
        self._clock = -math.inf
        self._next_emit: float | None = None
        #: Cumulative insert - delete balance per class (whole stream).
        self._balance: Counter[str] = Counter()

    @property
    def mode(self) -> str:
        """``"count"``, ``"wall_clock"`` or ``"hybrid"``."""
        if self.window is None:
            return "wall_clock"
        return "count" if self.window_seconds is None else "hybrid"

    @property
    def events_seen(self) -> int:
        """Total events pushed so far."""
        return self._seen

    @property
    def windows_emitted(self) -> int:
        """Snapshots produced so far."""
        return self._emitted

    def push(self, event: TraceEvent) -> WindowSnapshot | None:
        """Fold one event; returns a snapshot when a window completes.

        Count and hybrid modes emit the first snapshot once ``window``
        events arrived and every ``slide`` events after; wall-clock mode
        emits when the event timestamps have advanced ``window_seconds``
        past the first event and every ``slide_seconds`` after (at most
        one snapshot per event, however far a timestamp jumps).
        """
        if event.class_name not in self._scope:
            raise TraceError(
                f"event class {event.class_name!r} is not in "
                f"scope({self.path})"
            )
        self._events.append(event)
        self._seen += 1
        if event.kind == "insert":
            self._balance[event.class_name] += 1
        elif event.kind == "delete":
            self._balance[event.class_name] -= 1
        self._since_emit += 1
        self._clock = max(self._clock, event.timestamp)
        if self.window_seconds is not None:
            # Age out events that left the wall-clock span. The event
            # just pushed is always within it, so the window stays
            # non-empty.
            horizon = self._clock - self.window_seconds
            while self._events and self._events[0].timestamp <= horizon:
                self._events.popleft()
        if self.window is None:
            if self._next_emit is None:
                self._next_emit = event.timestamp + self.window_seconds
            if self._clock < self._next_emit:
                return None
            while self._next_emit <= self._clock:
                self._next_emit += self.slide_seconds
            return self._snapshot()
        if self._seen < self.window:
            return None
        emit_every = self.window if self._emitted == 0 else self.slide
        if self._since_emit < emit_every:
            return None
        self._since_emit = 0
        return self._snapshot()

    def feed(self, events: Iterable[TraceEvent]) -> Iterator[WindowSnapshot]:
        """Push a whole event sequence, yielding completed snapshots."""
        for event in events:
            snapshot = self.push(event)
            if snapshot is not None:
                yield snapshot

    # ------------------------------------------------------------------
    # snapshot assembly
    # ------------------------------------------------------------------
    def _snapshot(self) -> WindowSnapshot:
        counts: Counter[tuple[str, str]] = Counter()
        for event in self._events:
            counts[(event.class_name, event.kind)] += 1
        # Count and hybrid modes express frequencies per window *slot*,
        # wall-clock mode per second of window span.
        denominator = self.window_seconds if self.window is None else self.window
        triplets: dict[str, LoadTriplet] = {}
        for name in self.path.scope:
            query = counts.get((name, "query"), 0)
            insert = counts.get((name, "insert"), 0)
            delete = counts.get((name, "delete"), 0)
            if query or insert or delete:
                triplets[name] = LoadTriplet(
                    query=self.rate_scale * query / denominator,
                    insert=self.rate_scale * insert / denominator,
                    delete=self.rate_scale * delete / denominator,
                )
        load = LoadDistribution(self.path, triplets)
        snapshot = WindowSnapshot(
            index=self._emitted,
            events=len(self._events),
            first_timestamp=self._events[0].timestamp,
            last_timestamp=self._events[-1].timestamp,
            load=load,
            stats=self._adjusted_statistics(),
        )
        self._emitted += 1
        return snapshot

    def _adjusted_statistics(self) -> PathStatistics:
        """Statistics with the cumulative object balance folded in."""
        if not self.track_statistics or not any(self._balance.values()):
            return self.stats
        per_class: dict[str, ClassStats] = {}
        changed = False
        for position in range(1, self.stats.length + 1):
            for member in self.stats.members(position):
                current = self.stats.stats_of(member)
                balance = self._balance.get(member, 0)
                if balance == 0:
                    per_class[member] = current
                    continue
                # Never let a class drop below one object (the advisor's
                # inputs describe a populated path), and keep distinct
                # within the validating constructor's bound.
                objects = max(1.0, current.objects + balance)
                cap = objects * max(current.fanout, 1.0)
                distinct = max(1.0, min(current.distinct, cap))
                per_class[member] = ClassStats(
                    objects=objects, distinct=distinct, fanout=current.fanout
                )
                changed = True
        if not changed:
            return self.stats
        return PathStatistics(self.stats.path, per_class, self.stats.config)
