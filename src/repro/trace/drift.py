"""Workload-drift detection with hysteresis.

Re-running the advisor on every window would thrash: sampling noise
alone perturbs the windowed frequency estimates, and every re-advise
costs a (dirty-set-sized) matrix recompute plus a search refinement. A
:class:`DriftDetector` decides *when* the drift is real:

* **relative change** — each observed window is compared component by
  component (per class: query/insert/delete frequencies, and optionally
  the tracked statistics fields) against the *reference* inputs captured
  at the last re-advise; the signal is the maximum relative change,
  ``|new - ref| / max(|ref|, floor)``;
* **hysteresis** — the signal must exceed ``threshold`` for
  ``hysteresis`` *consecutive* windows before the detector fires, so a
  single noisy window cannot trigger a re-advise;
* **reset on fire** — firing adopts the current inputs as the new
  reference, so subsequent changes are measured against what the advisor
  actually knows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.params import PathStatistics
from repro.errors import TraceError
from repro.workload.load import LoadDistribution

#: Relative changes against a reference below this floor are measured
#: against the floor instead, so a frequency appearing out of nowhere
#: (reference 0) registers as a large but finite change.
DEFAULT_CHANGE_FLOOR = 1e-9


@dataclass(frozen=True)
class DriftDecision:
    """Outcome of one window observation."""

    fired: bool
    change: float
    streak: int
    trigger: str | None = None

    def describe(self) -> str:
        """One-line summary for logs and tables."""
        state = "re-advise" if self.fired else f"hold (streak {self.streak})"
        trigger = f" via {self.trigger}" if self.trigger else ""
        return f"{state}: max change {self.change:.1%}{trigger}"


class DriftDetector:
    """Relative-change drift detection with hysteresis.

    ``threshold`` is the relative change that counts as drift (0.2 =
    20%); ``hysteresis`` is how many consecutive drifting windows are
    required before :meth:`observe` fires (1 fires immediately). The
    reference inputs are set by :meth:`reset` (the advisor's state at
    the last re-advise) and adopted automatically whenever a decision
    fires.
    """

    def __init__(
        self,
        threshold: float = 0.2,
        hysteresis: int = 2,
        floor: float = DEFAULT_CHANGE_FLOOR,
    ) -> None:
        if not threshold >= 0:
            raise TraceError(
                f"drift threshold must be non-negative, got {threshold}"
            )
        if hysteresis < 1:
            raise TraceError(
                f"hysteresis must be at least 1 window, got {hysteresis}"
            )
        if not floor > 0:
            raise TraceError(f"change floor must be positive, got {floor}")
        self.threshold = threshold
        self.hysteresis = hysteresis
        self.floor = floor
        self.streak = 0
        self._reference_load: LoadDistribution | None = None
        self._reference_stats: PathStatistics | None = None

    def reset(
        self, load: LoadDistribution, stats: PathStatistics | None = None
    ) -> None:
        """Adopt new reference inputs (the advisor's current state)."""
        self._reference_load = load
        self._reference_stats = stats
        self.streak = 0

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def _relative(self, new: float, reference: float) -> float:
        return abs(new - reference) / max(abs(reference), self.floor)

    def _max_change(
        self, load: LoadDistribution, stats: PathStatistics | None
    ) -> tuple[float, str | None]:
        reference_load = self._reference_load
        change = 0.0
        trigger: str | None = None
        for name, triplet in load.items():
            reference = reference_load.triplet(name)
            for component in ("query", "insert", "delete"):
                value = self._relative(
                    getattr(triplet, component), getattr(reference, component)
                )
                if value > change:
                    change = value
                    trigger = f"{name}:{component}"
        if stats is not None and self._reference_stats is not None:
            reference_stats = self._reference_stats
            for position in range(1, stats.length + 1):
                for member in stats.members(position):
                    new_stats = stats.stats_of(member)
                    old_stats = reference_stats.stats_of(member)
                    for component in ("objects", "distinct", "fanout"):
                        value = self._relative(
                            getattr(new_stats, component),
                            getattr(old_stats, component),
                        )
                        if value > change:
                            change = value
                            trigger = f"{member}:{component}"
        return change, trigger

    def observe(
        self, load: LoadDistribution, stats: PathStatistics | None = None
    ) -> DriftDecision:
        """Compare one window against the reference; maybe fire.

        The first observation with no reference set adopts the inputs as
        the reference and never fires (there is nothing to drift from).
        """
        if self._reference_load is None:
            self.reset(load, stats)
            return DriftDecision(fired=False, change=0.0, streak=0)
        change, trigger = self._max_change(load, stats)
        if change > self.threshold:
            self.streak += 1
        else:
            self.streak = 0
        if self.streak >= self.hysteresis:
            decision = DriftDecision(
                fired=True, change=change, streak=self.streak, trigger=trigger
            )
            self.reset(load, stats)
            return decision
        return DriftDecision(
            fired=False, change=change, streak=self.streak, trigger=trigger
        )
