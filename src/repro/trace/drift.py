"""Workload-drift detection with hysteresis.

Re-running the advisor on every window would thrash: sampling noise
alone perturbs the windowed frequency estimates, and every re-advise
costs a (dirty-set-sized) matrix recompute plus a search refinement. A
:class:`DriftDetector` decides *when* the drift is real:

* **relative change** — each observed window is compared component by
  component (per class: query/insert/delete frequencies, and optionally
  the tracked statistics fields) against the *reference* inputs captured
  at the last re-advise; the signal is the maximum relative change,
  ``|new - ref| / max(|ref|, floor)``;
* **hysteresis** — the signal must exceed ``threshold`` for
  ``hysteresis`` *consecutive* windows before the detector fires, so a
  single noisy window cannot trigger a re-advise;
* **reset on fire** — firing adopts the current inputs as the new
  reference, so subsequent changes are measured against what the advisor
  actually knows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.costmodel.params import PathStatistics
from repro.errors import TraceError
from repro.workload.load import LoadDistribution

#: Relative changes against a reference below this floor are measured
#: against the floor instead, so a frequency appearing out of nowhere
#: (reference 0) registers as a large but finite change.
DEFAULT_CHANGE_FLOOR = 1e-9

#: Numerator of the adaptive threshold ``noise_scale / sqrt(window)``.
#: A windowed frequency is a count estimate whose sampling noise shrinks
#: like ``1/sqrt(window)``, so the drift threshold can shrink with it.
#: The default anchors the historical fixed threshold: at window 100 the
#: adaptive threshold is exactly the old 0.2 default.
DEFAULT_NOISE_SCALE = 2.0

#: Adaptive thresholds never drop below this, however large the window:
#: real drift smaller than 5% rarely changes the selected configuration,
#: and chasing it would thrash the session for nothing.
MIN_ADAPTIVE_THRESHOLD = 0.05


@dataclass(frozen=True)
class DriftDecision:
    """Outcome of one window observation."""

    fired: bool
    change: float
    streak: int
    trigger: str | None = None

    def describe(self) -> str:
        """One-line summary for logs and tables."""
        state = "re-advise" if self.fired else f"hold (streak {self.streak})"
        trigger = f" via {self.trigger}" if self.trigger else ""
        return f"{state}: max change {self.change:.1%}{trigger}"


class DriftDetector:
    """Relative-change drift detection with hysteresis.

    ``threshold`` is the relative change that counts as drift (0.2 =
    20%); ``hysteresis`` is how many consecutive drifting windows are
    required before :meth:`observe` fires (1 fires immediately). The
    reference inputs are set by :meth:`reset` (the advisor's state at
    the last re-advise) and adopted automatically whenever a decision
    fires.
    """

    def __init__(
        self,
        threshold: float = 0.2,
        hysteresis: int = 2,
        floor: float = DEFAULT_CHANGE_FLOOR,
    ) -> None:
        if not threshold >= 0:
            raise TraceError(
                f"drift threshold must be non-negative, got {threshold}"
            )
        if hysteresis < 1:
            raise TraceError(
                f"hysteresis must be at least 1 window, got {hysteresis}"
            )
        if not floor > 0:
            raise TraceError(f"change floor must be positive, got {floor}")
        self.threshold = threshold
        self.hysteresis = hysteresis
        self.floor = floor
        self.streak = 0
        self._reference_load: LoadDistribution | None = None
        self._reference_stats: PathStatistics | None = None

    @classmethod
    def adaptive(
        cls,
        window: int,
        *,
        noise_scale: float = DEFAULT_NOISE_SCALE,
        min_threshold: float = MIN_ADAPTIVE_THRESHOLD,
        hysteresis: int = 2,
        floor: float = DEFAULT_CHANGE_FLOOR,
    ) -> "DriftDetector":
        """A detector whose threshold tracks the window's sampling noise.

        A frequency estimated from ``window`` events carries relative
        sampling noise on the order of ``1/sqrt(window)``, so a fixed
        threshold is simultaneously too twitchy for small windows and too
        numb for large ones. The adaptive threshold is
        ``max(min_threshold, noise_scale / sqrt(window))`` —
        with the defaults, window 100 reproduces the historical fixed
        0.2, window 400 halves it to 0.1, and very large windows bottom
        out at ``min_threshold``.
        """
        if window < 1:
            raise TraceError(
                f"adaptive threshold needs a positive window, got {window}"
            )
        if not noise_scale > 0:
            raise TraceError(
                f"noise scale must be positive, got {noise_scale}"
            )
        if not min_threshold >= 0:
            raise TraceError(
                f"minimum threshold must be non-negative, got {min_threshold}"
            )
        threshold = max(min_threshold, noise_scale / math.sqrt(window))
        return cls(threshold=threshold, hysteresis=hysteresis, floor=floor)

    def reset(
        self, load: LoadDistribution, stats: PathStatistics | None = None
    ) -> None:
        """Adopt new reference inputs (the advisor's current state)."""
        self._reference_load = load
        self._reference_stats = stats
        self.streak = 0

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def _relative(self, new: float, reference: float) -> float:
        return abs(new - reference) / max(abs(reference), self.floor)

    def _max_change(
        self, load: LoadDistribution, stats: PathStatistics | None
    ) -> tuple[float, str | None]:
        reference_load = self._reference_load
        change = 0.0
        trigger: str | None = None
        for name, triplet in load.items():
            reference = reference_load.triplet(name)
            for component in ("query", "insert", "delete"):
                value = self._relative(
                    getattr(triplet, component), getattr(reference, component)
                )
                if value > change:
                    change = value
                    trigger = f"{name}:{component}"
        if stats is not None and self._reference_stats is not None:
            reference_stats = self._reference_stats
            for position in range(1, stats.length + 1):
                for member in stats.members(position):
                    new_stats = stats.stats_of(member)
                    old_stats = reference_stats.stats_of(member)
                    for component in ("objects", "distinct", "fanout"):
                        value = self._relative(
                            getattr(new_stats, component),
                            getattr(old_stats, component),
                        )
                        if value > change:
                            change = value
                            trigger = f"{member}:{component}"
        return change, trigger

    def observe(
        self, load: LoadDistribution, stats: PathStatistics | None = None
    ) -> DriftDecision:
        """Compare one window against the reference; maybe fire.

        The first observation with no reference set adopts the inputs as
        the reference and never fires (there is nothing to drift from).
        """
        if self._reference_load is None:
            self.reset(load, stats)
            return DriftDecision(fired=False, change=0.0, streak=0)
        change, trigger = self._max_change(load, stats)
        if change > self.threshold:
            self.streak += 1
        else:
            self.streak = 0
        if self.streak >= self.hysteresis:
            decision = DriftDecision(
                fired=True, change=change, streak=self.streak, trigger=trigger
            )
            self.reset(load, stats)
            return decision
        return DriftDecision(
            fired=False, change=change, streak=self.streak, trigger=trigger
        )
