#!/usr/bin/env python3
"""Chrome-trace profile validator for CI.

The ``obs`` CI job runs an instrumented ``advise --profile`` and feeds
the output through this script, so a profile the CLI claims is
Perfetto-loadable actually is. Checks, all fail-on-regression:

* the document carries the ``traceEvents``/``metrics``/``meta`` shape
  :func:`repro.obs.export.profile_document` promises;
* every ``ph: "X"`` complete event has numeric non-negative
  ``ts``/``dur`` and integer ``pid``/``tid``;
* metadata is complete: one ``process_name`` event, plus a
  ``thread_name`` event for every thread lane that complete events use;
* within each ``(pid, tid)`` lane spans strictly nest — any pair of
  complete events is either disjoint or one contains the other, never
  partially overlapping (the tree Perfetto renders is real, not an
  artifact of the viewer);
* every span name passed via ``--require`` appears (the CI job pins the
  pipeline's load-bearing spans so a silently unplugged recorder fails
  the build rather than producing an empty-but-valid trace).

Importable as ``check_trace.validate(document, required_spans=...)`` —
``tests/test_obs_pipeline.py`` reuses it on in-process profiles.

Usage::

    python tools/check_trace.py profile.json --require advise \\
        --require matrix.build
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: Span timestamps are rounded to 3 decimal microseconds on export;
#: containment checks allow double that so rounding never fails a trace.
EPSILON_US = 0.002


def _check_shape(document: object) -> list[str]:
    if not isinstance(document, dict):
        return ["profile document is not a JSON object"]
    failures = []
    if not isinstance(document.get("traceEvents"), list):
        failures.append("missing or non-list 'traceEvents'")
    for key in ("metrics", "meta"):
        if not isinstance(document.get(key), dict):
            failures.append(f"missing or non-object '{key}'")
    return failures


def _check_events(events: list) -> list[str]:
    failures = []
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            failures.append(f"traceEvents[{index}] is not an object")
            continue
        label = f"traceEvents[{index}] ({event.get('name', '?')!r})"
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                failures.append(f"{label}: missing '{key}'")
        for key in ("pid", "tid"):
            if key in event and not isinstance(event[key], int):
                failures.append(f"{label}: '{key}' is not an integer")
        if event.get("ph") == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    failures.append(
                        f"{label}: '{key}' must be a non-negative number, "
                        f"got {value!r}"
                    )
    return failures


def _check_metadata(events: list) -> list[str]:
    failures = []
    meta_events = [e for e in events if isinstance(e, dict) and e.get("ph") == "M"]
    if not any(e.get("name") == "process_name" for e in meta_events):
        failures.append("no 'process_name' metadata event")
    named_tids = {
        e.get("tid") for e in meta_events if e.get("name") == "thread_name"
    }
    used_tids = {
        e.get("tid")
        for e in events
        if isinstance(e, dict) and e.get("ph") == "X"
    }
    for tid in sorted(used_tids - named_tids, key=repr):
        failures.append(f"thread {tid!r} has complete events but no thread_name")
    return failures


def _check_nesting(events: list) -> list[str]:
    failures = []
    lanes: dict[tuple, list[dict]] = {}
    for event in events:
        if (
            isinstance(event, dict)
            and event.get("ph") == "X"
            and isinstance(event.get("ts"), (int, float))
            and isinstance(event.get("dur"), (int, float))
        ):
            lanes.setdefault((event["pid"], event["tid"]), []).append(event)
    for (pid, tid), lane in sorted(lanes.items()):
        # Longest-first at equal start times, so a parent precedes the
        # children it contains and the stack sweep below sees the tree
        # in pre-order.
        lane.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[dict] = []
        for event in lane:
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and start >= stack[-1]["ts"] + stack[-1]["dur"] - EPSILON_US:
                stack.pop()
            if stack and end > stack[-1]["ts"] + stack[-1]["dur"] + EPSILON_US:
                failures.append(
                    f"lane pid={pid} tid={tid}: span "
                    f"{event['name']!r} [{start}, {end}] partially overlaps "
                    f"{stack[-1]['name']!r} — spans must nest"
                )
                continue
            stack.append(event)
    return failures


def validate(document: object, required_spans: tuple = ()) -> list[str]:
    """Every problem found in one exported profile document."""
    failures = _check_shape(document)
    if failures:
        return failures
    events = document["traceEvents"]
    failures.extend(_check_events(events))
    failures.extend(_check_metadata(events))
    failures.extend(_check_nesting(events))
    present = {
        e.get("name")
        for e in events
        if isinstance(e, dict) and e.get("ph") == "X"
    }
    for name in required_spans:
        if name not in present:
            failures.append(f"required span {name!r} not present in the trace")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("profile", help="profile JSON written by --profile")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="SPAN",
        help="span name that must appear (repeatable)",
    )
    arguments = parser.parse_args(argv)
    try:
        document = json.loads(
            pathlib.Path(arguments.profile).read_text(encoding="utf-8")
        )
    except (OSError, ValueError) as error:
        print(f"cannot read profile: {error}", file=sys.stderr)
        return 1
    failures = validate(document, tuple(arguments.require))
    if failures:
        for failure in failures:
            print(f"TRACE FAILURE: {failure}", file=sys.stderr)
        return 1
    spans = sum(
        1
        for e in document["traceEvents"]
        if isinstance(e, dict) and e.get("ph") == "X"
    )
    print(f"trace OK: {spans} spans, nesting and metadata valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
