#!/usr/bin/env python3
"""Documentation and timing-seam guards for CI.

Three checks, all fail-on-regression:

* every Python module under ``src/repro/`` carries a non-empty module
  docstring (the docs job treats an undocumented module as a build
  break, not a style nit);
* every relative Markdown link in ``docs/*.md`` and ``README.md``
  resolves to an existing file (external ``http(s)``/``mailto`` targets
  and in-page ``#anchors`` are skipped — the guard is about repository
  rot, not the internet);
* no module under ``src/repro/`` calls ``time.time()`` or
  ``time.perf_counter()`` directly except ``repro/obs/clock.py`` — all
  timing goes through the injectable clock seam so ``FakeClock`` can
  drive deterministic span tests (``time.monotonic`` for deadlines is
  deliberately not banned; it measures elapsed wall budget, not spans).

Run locally with ``python tools/check_docs.py``; exits non-zero listing
every failure.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SOURCE_ROOT = ROOT / "src" / "repro"

#: Inline Markdown links ``[text](target)``; the first character class
#: excludes pure in-page anchors ``(#...)``.
LINK = re.compile(r"\[[^\]]*\]\(([^)#\s][^)\s]*)\)")

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def missing_docstrings() -> list[str]:
    """Modules under src/repro/ whose module docstring is absent or blank."""
    failures = []
    for path in sorted(SOURCE_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        docstring = ast.get_docstring(tree)
        if not docstring or not docstring.strip():
            failures.append(str(path.relative_to(ROOT)))
    return failures


#: The one module allowed to touch the wall clock for span timing.
CLOCK_SEAM = SOURCE_ROOT / "obs" / "clock.py"

#: ``time`` attributes whose direct use bypasses the clock seam.
BANNED_TIME_ATTRIBUTES = frozenset({"time", "perf_counter"})


def bare_time_calls() -> list[str]:
    """Direct ``time.time``/``time.perf_counter`` uses outside the seam.

    Flags attribute references on the ``time`` module and ``from time
    import time/perf_counter`` aliases, found by AST walk so strings and
    comments never false-positive.
    """
    failures = []
    for path in sorted(SOURCE_ROOT.rglob("*.py")):
        if path == CLOCK_SEAM:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        relative = str(path.relative_to(ROOT))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"
                and node.attr in BANNED_TIME_ATTRIBUTES
            ):
                failures.append(
                    f"{relative}:{node.lineno}: time.{node.attr} bypasses "
                    "repro.obs.clock"
                )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in BANNED_TIME_ATTRIBUTES:
                        failures.append(
                            f"{relative}:{node.lineno}: from time import "
                            f"{alias.name} bypasses repro.obs.clock"
                        )
    return failures


def broken_links() -> list[str]:
    """Relative links in docs/ and README.md that point at nothing."""
    documents = sorted((ROOT / "docs").glob("*.md"))
    readme = ROOT / "README.md"
    if readme.exists():
        documents.append(readme)
    failures = []
    for document in documents:
        for match in LINK.finditer(document.read_text(encoding="utf-8")):
            target = match.group(1).strip()
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (document.parent / relative).resolve().exists():
                failures.append(
                    f"{document.relative_to(ROOT)}: broken link -> {target}"
                )
    return failures


def main() -> int:
    failures = 0
    undocumented = missing_docstrings()
    if undocumented:
        failures += len(undocumented)
        print("modules without a docstring:", file=sys.stderr)
        for module in undocumented:
            print(f"  {module}", file=sys.stderr)
    broken = broken_links()
    if broken:
        failures += len(broken)
        print("broken documentation links:", file=sys.stderr)
        for link in broken:
            print(f"  {link}", file=sys.stderr)
    timing = bare_time_calls()
    if timing:
        failures += len(timing)
        print("wall-clock calls outside the clock seam:", file=sys.stderr)
        for call in timing:
            print(f"  {call}", file=sys.stderr)
    if failures:
        print(f"{failures} documentation failure(s)", file=sys.stderr)
        return 1
    print(
        "docs OK: all modules documented, all links resolve, "
        "timing stays behind repro.obs.clock"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
