#!/usr/bin/env python3
"""Documentation guards for CI.

Two checks, both fail-on-regression:

* every Python module under ``src/repro/`` carries a non-empty module
  docstring (the docs job treats an undocumented module as a build
  break, not a style nit);
* every relative Markdown link in ``docs/*.md`` and ``README.md``
  resolves to an existing file (external ``http(s)``/``mailto`` targets
  and in-page ``#anchors`` are skipped — the guard is about repository
  rot, not the internet).

Run locally with ``python tools/check_docs.py``; exits non-zero listing
every failure.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SOURCE_ROOT = ROOT / "src" / "repro"

#: Inline Markdown links ``[text](target)``; the first character class
#: excludes pure in-page anchors ``(#...)``.
LINK = re.compile(r"\[[^\]]*\]\(([^)#\s][^)\s]*)\)")

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def missing_docstrings() -> list[str]:
    """Modules under src/repro/ whose module docstring is absent or blank."""
    failures = []
    for path in sorted(SOURCE_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        docstring = ast.get_docstring(tree)
        if not docstring or not docstring.strip():
            failures.append(str(path.relative_to(ROOT)))
    return failures


def broken_links() -> list[str]:
    """Relative links in docs/ and README.md that point at nothing."""
    documents = sorted((ROOT / "docs").glob("*.md"))
    readme = ROOT / "README.md"
    if readme.exists():
        documents.append(readme)
    failures = []
    for document in documents:
        for match in LINK.finditer(document.read_text(encoding="utf-8")):
            target = match.group(1).strip()
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (document.parent / relative).resolve().exists():
                failures.append(
                    f"{document.relative_to(ROOT)}: broken link -> {target}"
                )
    return failures


def main() -> int:
    failures = 0
    undocumented = missing_docstrings()
    if undocumented:
        failures += len(undocumented)
        print("modules without a docstring:", file=sys.stderr)
        for module in undocumented:
            print(f"  {module}", file=sys.stderr)
    broken = broken_links()
    if broken:
        failures += len(broken)
        print("broken documentation links:", file=sys.stderr)
        for link in broken:
            print(f"  {link}", file=sys.stderr)
    if failures:
        print(f"{failures} documentation failure(s)", file=sys.stderr)
        return 1
    print("docs OK: all modules documented, all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
