"""Measured-vs-analytic validation demo.

Builds a synthetic database, then compares the paper's Section 3 cost
formulas against page accesses counted by the operational simulator for
queries, insertions and deletions under two configurations.

    python examples/validation_demo.py
"""

from repro import ClassStats, IndexConfiguration, IndexOrganization
from repro.synth import LevelSpec, linear_path_schema, populate_path_database
from repro.validate.compare import render_validation, validate_configuration

MX = IndexOrganization.MX
NIX = IndexOrganization.NIX

SPECS = {
    "Customer": ClassStats(objects=3_000, distinct=600, fanout=2),
    "Account": ClassStats(objects=500, distinct=200, fanout=1),
    "AccountSub1": ClassStats(objects=200, distinct=100, fanout=1),
    "Branch": ClassStats(objects=150, distinct=50, fanout=1),
}


def build():
    schema, path = linear_path_schema(
        [
            LevelSpec("Customer", multi_valued=True),
            LevelSpec("Account", subclasses=1),
            LevelSpec("Branch"),
        ],
        ending_attribute="city",
    )
    return schema, path


def main() -> None:
    schema, path = build()
    for configuration in (
        IndexConfiguration.whole_path(3, NIX),
        IndexConfiguration.of((1, 1, MX), (2, 3, NIX)),
    ):
        database = populate_path_database(schema, path, SPECS, seed=3)
        rows = validate_configuration(
            database, path, configuration, samples=10, seed=5
        )
        print(configuration.render(path))
        print(render_validation(rows))
        worst = max(rows, key=lambda row: abs(row.ratio - 1.0))
        print(
            f"worst ratio: {worst.ratio:.2f} "
            f"({worst.operation} on {worst.class_name})"
        )
        print()


if __name__ == "__main__":
    main()
