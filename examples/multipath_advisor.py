"""Multi-path joint optimization demo (the Section 6 extension).

Two database operations traverse overlapping paths:

* ``Person.owns.man.divisions.name`` (Example 5.1) and
* ``Person.owns.man.name``          (Example 2.1),

which share the subpath ``Person.owns.man``. Optimizing them jointly lets
a shared physical index pay its maintenance once.

    python examples/multipath_advisor.py
"""

from repro import ClassStats, LoadDistribution, LoadTriplet, PathStatistics
from repro.core.multipath import PathWorkload, optimize_multipath
from repro.paper import (
    FIGURE7_ROWS,
    figure7_load,
    figure7_statistics,
    pe_path,
)


def main() -> None:
    pexa_workload = PathWorkload(stats=figure7_statistics(), load=figure7_load())

    pe = pe_path()
    per_class = {
        name: ClassStats(objects=n, distinct=d, fanout=nin)
        for name, (n, d, nin, _) in FIGURE7_ROWS.items()
        if name in pe.scope
    }
    pe_workload = PathWorkload(
        stats=PathStatistics(pe, per_class),
        load=LoadDistribution(
            pe,
            {name: LoadTriplet(*FIGURE7_ROWS[name][3]) for name in pe.scope},
        ),
    )

    workloads = [pexa_workload, pe_workload]
    print("paths under joint optimization:")
    for workload in workloads:
        print(f"  {workload.stats.path}")
    print()

    result = optimize_multipath(workloads)
    print(result.render(workloads))
    print()
    saved = result.independent_cost - result.total_cost
    percent = 100.0 * saved / result.independent_cost
    print(
        f"joint optimization saves {saved:.2f} expected page accesses "
        f"({percent:.1f}%) over optimizing each path alone"
    )


if __name__ == "__main__":
    main()
