"""The paper's running example, operationally.

Builds the Figure 1 schema and Figure 2 objects, materializes the
configuration Example 5.1 selects, and runs the paper's motivating query
— "Retrieve the persons who own a bus manufactured by the company Fiat" —
through the operational indexes, reporting measured page accesses. Then
exercises maintenance: new objects arrive and old ones are deleted, with
the indexes verified against the database after every step.

    python examples/vehicle_registry.py
"""

from repro import IndexConfiguration, IndexOrganization
from repro.indexes.executor import PathQueryExecutor
from repro.indexes.manager import ConfigurationIndexSet
from repro.model.examples import (
    build_vehicle_schema,
    pe_path,
    populate_vehicle_database,
)

NIX = IndexOrganization.NIX
MX = IndexOrganization.MX


def main() -> None:
    schema = build_vehicle_schema()
    print("Figure 1 schema:")
    print(schema.describe())
    print()

    database = populate_vehicle_database(schema)
    path = pe_path(schema)  # Person.owns.man.name (Example 2.1)
    print(f"path: {path}  (len={path.length}, scope={', '.join(path.scope)})")
    print(f"objects: {database.total_objects()}")
    print()

    # Index the path: NIX on Person.owns.man, simple index on Company.name
    # (the shape Example 5.1 selects for the longer sibling path).
    configuration = IndexConfiguration.of((1, 2, NIX), (3, 3, MX))
    indexes = ConfigurationIndexSet(database, path, configuration)
    executor = PathQueryExecutor(indexes)
    print(f"configuration: {configuration.render(path)}")
    print()

    # The motivating query of Section 1.
    result = executor.query("Fiat", "Person", include_subclasses=False)
    owners = sorted(
        database.get(oid).values["name"] for oid in result.oids
    )
    print("persons who own a vehicle manufactured by Fiat:")
    print(f"  {owners}  ({result.stats.total} page accesses)")

    bus_owners = executor.query("Fiat", "Bus")
    print("...owning specifically a Bus made by Fiat:")
    buses = sorted(str(oid) for oid in bus_owners.oids)
    print(f"  buses: {buses}  ({bus_owners.stats.total} page accesses)")
    print()

    # Maintenance: a new company, vehicle and owner arrive.
    print("inserting Tesla -> Roadster -> owner Nikola ...")
    tesla = executor.insert(
        "Company", name="Tesla", location="Austin", divisions=[]
    )
    roadster = executor.insert(
        "Vehicle", vid=100, color="Red", max_speed=250, man=tesla.oid
    )
    nikola = executor.insert("Person", name="Nikola", age=36, owns=[roadster.oid])
    print(
        f"  maintenance cost: company={tesla.stats.total}, "
        f"vehicle={roadster.stats.total}, person={nikola.stats.total} pages"
    )
    indexes.check_consistency()

    tesla_owners = executor.query("Tesla", "Person")
    print(f"  owners of Teslas now: "
          f"{sorted(database.get(o).values['name'] for o in tesla_owners.oids)}")
    print()

    print("deleting the Tesla company (cross-subpath CMD maintenance) ...")
    removal = executor.delete(tesla.oid)
    indexes.check_consistency()
    print(f"  deletion cost: {removal.stats.total} page accesses")
    after = executor.query("Tesla", "Person")
    print(f"  owners of Teslas after deletion: {sorted(after.oids) or 'none'}")


if __name__ == "__main__":
    main()
