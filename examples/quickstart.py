"""Quickstart: select the optimal index configuration for the paper's path.

Runs the complete Section 5 pipeline — Cost_Matrix, Min_Cost, Opt_Ind_Con
— on the paper's Example 5.1 inputs (Figure 7) and prints the report.

    python examples/quickstart.py
"""

from repro import advise
from repro.paper import figure7_load, figure7_statistics


def main() -> None:
    stats = figure7_statistics()  # Figure 7: n, d, nin per scope class
    load = figure7_load()  # Figure 7: (query, insert, delete) per class

    report = advise(stats, load, keep_trace=True)

    print(report.render())
    print()
    print("branch-and-bound decisions:")
    for line in report.optimal.trace:
        print("  " + line)


if __name__ == "__main__":
    main()
