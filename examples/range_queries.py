"""Range predicates across organizations (the Section 3 extension).

Demonstrates the range-predicate support end to end: analytic range
costs per organization, the advisor run with a range workload, an EXPLAIN
plan, and a measured operational range query.

    python examples/range_queries.py
"""

from repro import IndexConfiguration, IndexOrganization, advise, explain_query
from repro.costmodel.subpath import build_model
from repro.indexes.executor import PathQueryExecutor
from repro.indexes.manager import ConfigurationIndexSet
from repro.model.examples import build_vehicle_schema, pexa_path, populate_vehicle_database
from repro.paper import figure7_load, figure7_statistics

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX


def main() -> None:
    stats = figure7_statistics()

    print("whole-path range-query cost (w.r.t. Person) by selectivity:")
    print(f"{'selectivity':>12} {'MX':>10} {'MIX':>10} {'NIX':>10}")
    models = {org: build_model(stats, 1, 4, org) for org in (MX, MIX, NIX)}
    for selectivity in (0.001, 0.01, 0.1, 0.3):
        row = [
            f"{models[org].range_query_cost(1, 'Person', selectivity):10.1f}"
            for org in (MX, MIX, NIX)
        ]
        print(f"{selectivity:>12g} {' '.join(row)}")
    print()

    report = advise(stats, figure7_load(), range_selectivity=0.1)
    print("advisor with 10%-selectivity range workload:")
    print(f"  optimal: {report.optimal.configuration.render(stats.path)}"
          f" at {report.optimal.cost:.2f}")
    print()

    plan = explain_query(
        stats, report.optimal.configuration, "Person", range_selectivity=0.1
    )
    print(plan.render())
    print()

    # Operational: run a real range query on the Figure 2 database.
    schema = build_vehicle_schema()
    database = populate_vehicle_database(schema)
    path = pexa_path(schema)
    indexes = ConfigurationIndexSet(
        database, path, IndexConfiguration.whole_path(4, NIX)
    )
    executor = PathQueryExecutor(indexes)
    measured = executor.range_query("Daf-cabs", "Fiat-movings", "Person")
    owners = sorted(database.get(oid).values["name"] for oid in measured.oids)
    print(
        "persons owning vehicles whose maker has a division named in "
        f"['Daf-cabs'..'Fiat-movings']: {owners} "
        f"({measured.stats.total} measured page accesses)"
    )


if __name__ == "__main__":
    main()
