"""Index advisor on a synthetic order-management database.

The scenario the paper's introduction motivates, transplanted to a
business domain: a four-level aggregation path

    Order --items--> Product --supplier--> Supplier --region--> Region.name

with an inheritance hierarchy under Product. The database is generated,
its statistics are *derived from the data* (what an administrator's
statistics collector would do), the advisor selects a configuration, and
the choice is sanity-checked by executing the workload operationally.

    python examples/index_advisor.py
"""

from repro import ClassStats, LoadDistribution, LoadTriplet, advise
from repro.indexes.executor import PathQueryExecutor
from repro.indexes.manager import ConfigurationIndexSet
from repro.synth import (
    LevelSpec,
    derive_path_statistics,
    linear_path_schema,
    populate_path_database,
)


def main() -> None:
    schema, path = linear_path_schema(
        [
            LevelSpec("Order", multi_valued=True),
            LevelSpec("Product", subclasses=2, multi_valued=False),
            LevelSpec("Supplier", multi_valued=False),
            LevelSpec("Region", multi_valued=False),
        ],
        ending_attribute="name",
    )
    specs = {
        "Order": ClassStats(objects=20_000, distinct=3_000, fanout=3),
        "Product": ClassStats(objects=2_000, distinct=400, fanout=1),
        "ProductSub1": ClassStats(objects=600, distinct=200, fanout=1),
        "ProductSub2": ClassStats(objects=400, distinct=150, fanout=1),
        "Supplier": ClassStats(objects=500, distinct=60, fanout=1),
        "Region": ClassStats(objects=60, distinct=30, fanout=1),
    }
    print(f"generating database for {path} ...")
    database = populate_path_database(schema, path, specs, seed=42)
    print(f"  {database.total_objects()} objects")

    print("deriving statistics from the data ...")
    stats = derive_path_statistics(database, path)
    print(stats.describe())
    print()

    # Analysts query orders by region name; products churn.
    load = LoadDistribution(
        path,
        {
            "Order": LoadTriplet(query=0.60, insert=0.05, delete=0.05),
            "Product": LoadTriplet(query=0.05, insert=0.10, delete=0.10),
            "ProductSub1": LoadTriplet(query=0.02, insert=0.05, delete=0.05),
            "ProductSub2": LoadTriplet(query=0.02, insert=0.05, delete=0.05),
            "Supplier": LoadTriplet(query=0.05, insert=0.01, delete=0.01),
            "Region": LoadTriplet(query=0.10, insert=0.0, delete=0.0),
        },
    )
    report = advise(stats, load, include_noindex=True)
    print(report.render())
    print()

    # Execute the chosen configuration for a sanity check.
    configuration = report.optimal.configuration
    indexes = ConfigurationIndexSet(database, path, configuration)
    executor = PathQueryExecutor(indexes)
    region = next(database.extent("Region")).values["name"]
    measured = executor.query(region, "Order")
    print(
        f"operational check: {len(measured.oids)} orders reach region "
        f"{region!r} in {measured.stats.total} measured page accesses"
    )


if __name__ == "__main__":
    main()
