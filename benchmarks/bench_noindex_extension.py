"""Section 6 extension: allowing unindexed subpaths.

"Furthermore, we will incorporate in the algorithm the possibility that no
index will be allocated on a subpath." This ablation sweeps the update
intensity on the Figure 7 statistics and reports when the optimizer starts
leaving subpaths unindexed, and how much that saves.
"""

from benchmarks.conftest import write_report
from repro.core.advisor import advise
from repro.organizations import EXTENDED_ORGANIZATIONS, IndexOrganization
from repro.paper import figure7_statistics
from repro.reporting.tables import ascii_table
from repro.workload.load import LoadDistribution, LoadTriplet

UPDATE_INTENSITIES = [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0]


def sweep():
    stats = figure7_statistics()
    path = stats.path
    rows = []
    gains = []
    for intensity in UPDATE_INTENSITIES:
        load = LoadDistribution(
            path,
            {
                name: LoadTriplet(
                    query=0.05, insert=0.1 * intensity, delete=0.1 * intensity
                )
                for name in path.scope
            },
        )
        base = advise(stats, load, run_baselines=False)
        extended = advise(
            stats,
            load,
            organizations=EXTENDED_ORGANIZATIONS,
            run_baselines=False,
        )
        unindexed = sum(
            1
            for assignment in extended.optimal.configuration.assignments
            if assignment.organization is IndexOrganization.NONE
        )
        gain = base.optimal.cost / max(extended.optimal.cost, 1e-12)
        gains.append((intensity, gain, unindexed))
        rows.append(
            [
                f"{intensity:.1f}",
                f"{base.optimal.cost:.2f}",
                f"{extended.optimal.cost:.2f}",
                f"{gain:.2f}x",
                unindexed,
                extended.optimal.configuration.render(path),
            ]
        )
    return rows, gains


def test_noindex_extension(benchmark):
    rows, gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Query-only end: no subpath should drop its index.
    assert gains[0][2] == 0
    # Update-heavy end: at least one subpath goes unindexed and wins.
    assert gains[-1][2] >= 1
    assert gains[-1][1] > 1.0
    report = ascii_table(
        [
            "update intensity",
            "MX/MIX/NIX only",
            "with NONE",
            "gain",
            "#unindexed",
            "optimal configuration",
        ],
        rows,
        title=(
            "No-index extension (Section 6): optimizer cost with and without\n"
            "the option to leave subpaths unindexed, by update intensity"
        ),
    )
    write_report("noindex_extension", report)
