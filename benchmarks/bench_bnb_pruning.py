"""Section 5 complexity claims: 2^(n-1) recombinations and B&B pruning.

The paper argues exhaustive recombination is O(2^(n-1)) but "in practice a
path has rarely a length greater than 7" and branch and bound "reduced the
number of evaluations considerably". This benchmark sweeps path lengths on
cost matrices computed from synthetic statistics and reports configurations
evaluated by B&B versus the exhaustive count.
"""

import random

from benchmarks.conftest import write_report
from repro.core.cost_matrix import CostMatrix
from repro.costmodel.params import ClassStats, PathStatistics
from repro.reporting.tables import ascii_table
from repro.search import get_strategy
from repro.synth import LevelSpec, linear_path_schema
from repro.workload.load import LoadDistribution, LoadTriplet

LENGTHS = [3, 4, 5, 6, 7, 8]


def make_matrix(length: int, seed: int) -> CostMatrix:
    rng = random.Random(seed)
    levels = [LevelSpec(f"L{i}", multi_valued=i % 2 == 0) for i in range(length)]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    objects = 100_000
    for position in range(1, length + 1):
        name = path.class_at(position)
        distinct = max(10, objects // rng.randint(2, 12))
        per_class[name] = ClassStats(
            objects=objects, distinct=distinct, fanout=rng.choice([1, 1, 2, 3])
        )
        objects = max(50, objects // rng.randint(2, 10))
    stats = PathStatistics(path, per_class)
    load = LoadDistribution(
        path,
        {
            name: LoadTriplet(
                query=rng.uniform(0, 0.4),
                insert=rng.uniform(0, 0.15),
                delete=rng.uniform(0, 0.15),
            )
            for name in path.scope
        },
    )
    return CostMatrix.compute(stats, load)


def sweep() -> list[list[object]]:
    bnb = get_strategy("branch_and_bound")
    rows = []
    for length in LENGTHS:
        evaluated = []
        pruned = []
        for seed in range(5):
            matrix = make_matrix(length, seed)
            result = bnb.search(matrix)
            evaluated.append(result.evaluated)
            pruned.append(result.pruned)
        exhaustive = 2 ** (length - 1)
        mean_evaluated = sum(evaluated) / len(evaluated)
        rows.append(
            [
                length,
                exhaustive,
                f"{mean_evaluated:.1f}",
                f"{sum(pruned) / len(pruned):.1f}",
                f"{mean_evaluated / exhaustive:.2f}",
            ]
        )
    return rows


def test_bnb_pruning_sweep(benchmark):
    rows = benchmark(sweep)

    # Shape: B&B never exceeds the exhaustive count, and prunes
    # meaningfully on longer paths.
    for row in rows:
        length, exhaustive = row[0], row[1]
        assert float(row[2]) <= exhaustive
    longest = rows[-1]
    assert float(longest[4]) < 1.0  # strict pruning at n = 8

    report = ascii_table(
        ["path length", "2^(n-1)", "B&B evaluated (mean)", "pruned (mean)", "fraction"],
        rows,
        title=(
            "Branch-and-bound pruning vs exhaustive recombination\n"
            "(5 random statistics/workloads per length; paper: 4 of 8 at n=4)"
        ),
    )
    write_report("bnb_pruning", report)
