"""Observability overhead: the disabled recorder must stay under 2 %.

The PR 10 instrumentation contract: every pipeline layer accepts a
``recorder`` and the default :data:`~repro.obs.NULL_RECORDER` makes each
instrumented call site one attribute lookup plus one no-op call. This
benchmark proves the budget holds on the bench_kernel smoke path (a
serial fresh ``CostMatrix.compute`` on the deep-hierarchy world) without
A/B-timing two builds against each other — that guard would flake on
machine noise because the real overhead is orders of magnitude below
run-to-run variance.

Instead the guard is arithmetic over two stable measurements:

* **op counts** — a counting recorder (``enabled = False``, so it takes
  exactly the disabled control-flow path) tallies how many span and
  metric operations the smoke path performs; the counts are
  deterministic properties of the code, not timings;
* **null op cost** — the per-operation cost of the real
  :class:`~repro.obs.NullRecorder`, timed over a large tight loop where
  the mean is stable.

``overhead_pct = ops x null_op_cost / smoke_path_runtime``. The smoke
run fails when that exceeds :data:`OVERHEAD_LIMIT_PCT` — or when the
counting recorder sees zero spans, which means the instrumentation was
unplugged and the guard is vacuous. An enabled-recorder build is also
timed for the artifact (recording cost is allowed to be visible; only
the disabled path has a budget).

Usage::

    PYTHONPATH=src:. python benchmarks/bench_obs.py           # full
    PYTHONPATH=src:. python benchmarks/bench_obs.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from benchmarks.bench_kernel import SMOKE_LENGTH, clear_module_caches, make_inputs
from benchmarks.env_meta import environment_metadata
from repro.core.cost_matrix import CostMatrix
from repro.obs import NULL_RECORDER, NullRecorder, Recorder

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_obs.json"

#: The ISSUE 10 acceptance bar: recording-off overhead on the
#: bench_kernel smoke path must stay at or below this.
OVERHEAD_LIMIT_PCT = 2.0

#: Iterations for the null-op timing loop (large enough that the mean
#: per-op cost is stable to well under the guard's headroom).
NULL_OP_ITERATIONS = 200_000

REPEATS = 5


class CountingRecorder(NullRecorder):
    """A disabled recorder that tallies the operations it discards.

    ``enabled`` stays ``False`` so every ``if recorder.enabled`` gate in
    the pipeline takes the same branch as with the real null recorder —
    the counts are exactly the operations the disabled path pays for.
    """

    __slots__ = ("span_ops", "metric_ops")

    def __init__(self) -> None:
        self.span_ops = 0
        self.metric_ops = 0

    def span(self, name: str, **attrs):
        self.span_ops += 1
        return super().span(name, **attrs)

    def counter(self, name: str, **labels):
        self.metric_ops += 1
        return super().counter(name, **labels)

    def gauge(self, name: str, **labels):
        self.metric_ops += 1
        return super().gauge(name, **labels)

    def histogram(self, name: str, **labels):
        self.metric_ops += 1
        return super().histogram(name, **labels)


def count_smoke_path_ops(length: int) -> dict:
    """Deterministic span/metric op counts on one serial fresh build."""
    stats, load = make_inputs(length)
    clear_module_caches()
    recorder = CountingRecorder()
    CostMatrix.compute(
        stats, load, include_noindex=True, workers=0, recorder=recorder
    )
    return {"spans": recorder.span_ops, "metrics": recorder.metric_ops}


def time_null_ops(iterations: int = NULL_OP_ITERATIONS) -> dict:
    """Mean nanoseconds per disabled span / counter operation."""
    span = NULL_RECORDER.span
    started = time.perf_counter()
    for _ in range(iterations):
        with span("bench"):
            pass
    span_ns = (time.perf_counter() - started) / iterations * 1e9
    counter = NULL_RECORDER.counter
    started = time.perf_counter()
    for _ in range(iterations):
        counter("bench").add()
    counter_ns = (time.perf_counter() - started) / iterations * 1e9
    return {"span_ns": round(span_ns, 2), "counter_ns": round(counter_ns, 2)}


def time_smoke_path(length: int, recorder_factory) -> float:
    """Best-of-N milliseconds for the serial fresh build."""
    best = float("inf")
    for _ in range(REPEATS):
        stats, load = make_inputs(length)
        clear_module_caches()
        started = time.perf_counter()
        CostMatrix.compute(
            stats,
            load,
            include_noindex=True,
            workers=0,
            recorder=recorder_factory(),
        )
        best = min(best, (time.perf_counter() - started) * 1000.0)
    return round(best, 3)


def run(smoke: bool) -> dict:
    length = SMOKE_LENGTH
    ops = count_smoke_path_ops(length)
    null_op_ns = time_null_ops()
    disabled_ms = time_smoke_path(length, lambda: None)
    enabled_ms = time_smoke_path(length, Recorder)
    overhead_ns = (
        ops["spans"] * null_op_ns["span_ns"]
        + ops["metrics"] * null_op_ns["counter_ns"]
    )
    overhead_pct = overhead_ns / (disabled_ms * 1e6) * 100.0
    return {
        "benchmark": "obs",
        "mode": "smoke" if smoke else "full",
        "environment": environment_metadata(),
        "length": length,
        "smoke_path_ops": ops,
        "null_op_ns": null_op_ns,
        "disabled_ms": disabled_ms,
        "enabled_ms": enabled_ms,
        "overhead_pct": round(overhead_pct, 4),
        "overhead_limit_pct": OVERHEAD_LIMIT_PCT,
    }


def check_smoke(report: dict) -> list[str]:
    """CI guard: disabled-recorder overhead within budget, wiring live."""
    failures = []
    if report["smoke_path_ops"]["spans"] == 0:
        failures.append(
            "the counting recorder saw zero spans on the smoke path — the "
            "matrix build is no longer instrumented, the overhead guard "
            "is vacuous"
        )
    if report["overhead_pct"] > report["overhead_limit_pct"]:
        failures.append(
            f"disabled-recorder overhead {report['overhead_pct']:.4f}% on "
            f"the bench_kernel smoke path exceeds the "
            f"{report['overhead_limit_pct']}% budget"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--json-path",
        default=None,
        help=f"output path (default benchmarks/results/{JSON_NAME})",
    )
    arguments = parser.parse_args(argv)
    report = run(arguments.smoke)
    json_path = (
        pathlib.Path(arguments.json_path)
        if arguments.json_path
        else RESULTS_DIR / JSON_NAME
    )
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {json_path}", file=sys.stderr)
    failures = check_smoke(report) if arguments.smoke else []
    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
