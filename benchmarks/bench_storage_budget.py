"""Storage-budget ablation: the cost of fitting a page budget.

Sweeps the storage budget on the Figure 7 setup and reports the cheapest
configuration that fits, exposing the cost/storage trade-off curve — the
question a database administrator asks right after reading the paper.
"""

from benchmarks.conftest import write_report
from repro.core.budget import optimize_with_budget
from repro.core.cost_matrix import CostMatrix
from repro.organizations import EXTENDED_ORGANIZATIONS
from repro.paper import figure7_load, figure7_statistics
from repro.reporting.tables import ascii_table


def sweep():
    stats = figure7_statistics()
    matrix = CostMatrix.compute(
        stats, figure7_load(), organizations=EXTENDED_ORGANIZATIONS
    )
    generous = optimize_with_budget(matrix, budget_pages=10**12)
    budgets = [
        0.0,
        generous.unconstrained_storage * 0.1,
        generous.unconstrained_storage * 0.25,
        generous.unconstrained_storage * 0.5,
        generous.unconstrained_storage * 0.75,
        generous.unconstrained_storage * 1.0,
    ]
    rows = []
    results = []
    for budget in budgets:
        result = optimize_with_budget(matrix, budget_pages=budget)
        results.append(result)
        rows.append(
            [
                f"{budget:.0f}",
                f"{result.storage_pages:.0f}",
                f"{result.cost:.2f}",
                f"+{result.cost_of_constraint:.2f}",
                result.configuration.render(stats.path),
            ]
        )
    return rows, results


def test_storage_budget(benchmark):
    rows, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    costs = [result.cost for result in results]
    # Processing cost decreases (weakly) as the budget grows.
    assert costs == sorted(costs, reverse=True)
    # The zero budget forces a fully unindexed path.
    assert results[0].storage_pages == 0.0
    report = ascii_table(
        ["budget pages", "used pages", "cost", "vs unconstrained", "configuration"],
        rows,
        title=(
            "Storage-budget-constrained selection on Figure 7 statistics\n"
            "(organizations include NONE so a zero-storage fallback exists)"
        ),
    )
    write_report("storage_budget", report)
