"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) and writes a plain-text report to ``benchmarks/results/`` so the
artifacts survive the run. Shape assertions — who wins, by what factor —
are made inside the benchmarks; absolute numbers are expected to differ
from the paper (physical constants are not stated there).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, text: str) -> None:
    """Persist a benchmark's table to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    # Also echo for `pytest -s` runs.
    print(f"\n=== {name} ===\n{text}\n")


@pytest.fixture(scope="session")
def fig7_inputs():
    """Figure 7 statistics and workload (session-scoped)."""
    from repro.paper import figure7_load, figure7_statistics

    return figure7_statistics(), figure7_load()
