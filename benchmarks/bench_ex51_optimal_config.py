"""Example 5.1: the headline experiment.

Paper: the optimal configuration for ``P_exa`` is
``{(Per.owns.man, NIX), (Comp.divs.name, MX)}`` with processing cost
16.03; indexing the whole path with the default single index (a NIX)
costs 42.84 — "the idea of optimal index configuration decreases the
processing cost of a path by a factor 2.7" — and branch-and-bound finds
the optimum exploring 4 instead of all 8 configurations.

We assert every *shape* fact: the same winning configuration, a
whole-path-NIX/optimal factor comfortably above 2, agreement of B&B with
the exhaustive and DP baselines, and strictly fewer than 8 evaluations.
"""

from benchmarks.conftest import write_report
from repro.core.advisor import advise
from repro.organizations import IndexOrganization
from repro.paper import EX51_EXPECTED
from repro.reporting.tables import comparison_table

NIX = IndexOrganization.NIX


def test_ex51_optimal_configuration(benchmark, fig7_inputs):
    stats, load = fig7_inputs
    report = benchmark(lambda: advise(stats, load, keep_trace=True))

    optimal = report.optimal
    whole_nix = report.single_index_costs[NIX]
    factor = whole_nix / optimal.cost

    # --- paper shape assertions ---
    assert optimal.configuration.partition() == EX51_EXPECTED["optimal_partition"]
    organizations = tuple(
        a.organization for a in optimal.configuration.assignments
    )
    assert organizations == EX51_EXPECTED["optimal_organizations"]
    assert factor > 2.0  # paper: 2.7
    assert optimal.evaluated < EX51_EXPECTED["total_configurations"]
    assert report.exhaustive is not None and report.dynprog is not None
    assert abs(report.exhaustive.cost - optimal.cost) < 1e-9
    assert abs(report.dynprog.cost - optimal.cost) < 1e-9

    path = stats.path
    lines = [
        "Example 5.1 reproduction: optimal index configuration for P_exa",
        "",
        comparison_table(
            "optimal configuration",
            "{(Per.owns.man, NIX), (Comp.divs.name, MX)}",
            optimal.configuration.render(path),
        ),
        comparison_table(
            "optimal processing cost",
            EX51_EXPECTED["optimal_cost"],
            optimal.cost,
            note="absolute scale differs; physical constants unstated in paper",
        ),
        comparison_table(
            "whole-path NIX cost",
            EX51_EXPECTED["whole_path_nix_cost"],
            whole_nix,
        ),
        comparison_table(
            "improvement factor (NIX whole path / optimal)",
            EX51_EXPECTED["improvement_factor"],
            factor,
            note="paper: 'decreases the processing cost by a factor 2.7'",
        ),
        comparison_table(
            "configurations explored by branch-and-bound (of 8)",
            EX51_EXPECTED["explored"],
            optimal.evaluated,
            note=f"{optimal.pruned} branches pruned",
        ),
        "",
        "branch-and-bound trace:",
        *("  " + line for line in optimal.trace),
        "",
        report.render(),
    ]
    write_report("ex51_optimal_config", "\n".join(lines))
