"""Shared environment stamp for every ``BENCH_*.json`` artifact.

Benchmark numbers are only comparable when the environment that produced
them is known; every bench module's ``run()`` attaches
:func:`environment_metadata` under the ``environment`` key so artifacts
from different CI jobs (3.10 vs 3.12, numpy vs no-numpy) never get
compared as if they came from the same box.
"""

from __future__ import annotations

import os
import platform

from repro import kernel


def environment_metadata() -> dict:
    """The reproducibility stamp recorded in each benchmark artifact."""
    try:
        import numpy

        numpy_version: str | None = numpy.__version__
    except ImportError:  # pragma: no cover - exercised by the no-numpy job
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "numpy": numpy_version,
        "kernel_available": kernel.is_available(),
    }
