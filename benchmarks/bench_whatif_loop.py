"""Drifting-workload what-if loop: session vs rerun-everything.

Simulates the online-advisor scenario the ``repro.whatif`` subsystem was
built for: a long path whose workload drifts step by step while an
administrator (or a monitoring loop) re-asks "what is the optimal
configuration now?" after every step. Two loops answer the same
perturbation sequence:

* **rerun** — the one-shot pipeline from scratch each step
  (``CostMatrix.compute`` + a fresh ``dynamic_program`` search);
* **session** — one :class:`~repro.whatif.AdvisorSession` threading each
  step's exact dirty-row set through the incremental matrix recompute
  (with O(1) ``CMD`` patches) and the refinable DP.

Both loops must produce bit-identical per-step costs (asserted), so the
speedup is pure bookkeeping, not approximation. Two drift shapes are
measured:

* ``edge`` — drift concentrated on the ending classes (ingest-side
  churn: new objects and queries arrive at the leaf of the path), the
  common production pattern and the headline number;
* ``mixed`` — a uniformly random class/component drifts each step, the
  adversarial shape (query-frequency changes near the path start dirty
  most of the matrix).

The session loop is measured twice — **kernel-on** (dirty slices priced
by the columnar kernel through the persistent-lowering cache) and
**kernel-off** (the legacy scalar evaluator) — with their ratio recorded
as ``kernel_session_speedup``; all three loops must agree bit-for-bit.

Workloads come from :class:`repro.workload.generator.WorkloadGenerator`
and the drift from a seeded PRNG, so every run replays the same
sequence. Results land in ``benchmarks/results/BENCH_whatif.json``; the
``--smoke`` mode (CI) runs a short loop and fails only when the edge
speedup (or the kernel-on/kernel-off ratio) drops below a generous
threshold.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_whatif_loop.py           # full
    PYTHONPATH=src:. python benchmarks/bench_whatif_loop.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import random
import sys
import time

from benchmarks.env_meta import environment_metadata
from repro import kernel as columnar_kernel
from repro.core.cost_matrix import CostMatrix
from repro.costmodel.params import ClassStats, PathStatistics
from repro.search import get_strategy
from repro.synth import LevelSpec, linear_path_schema
from repro.whatif import AdvisorSession
from repro.workload.generator import WorkloadGenerator
from repro.workload.load import LoadDistribution, LoadTriplet

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_whatif.json"

#: The paper-facing target: the session loop must beat rerun-everything
#: by at least this factor on edge drift at length 30 (the full run).
FULL_TARGET_SPEEDUP = 5.0

#: CI guard: generous so machine noise never flakes the build, tight
#: enough to catch losing the incremental path entirely.
SMOKE_MIN_SPEEDUP = 1.5

#: PR 9 target: the kernel-on session loop (dirty slices priced on the
#: columnar kernel through cached/patched lowerings) must beat the
#: kernel-off (legacy evaluator) session loop by this factor at the
#: full length.
KERNEL_SESSION_TARGET = 2.0

#: CI guard for the kernel-on/kernel-off ratio — generous for noise,
#: tight enough to catch the dirty-slice path degrading to scalar.
KERNEL_SESSION_SMOKE_MIN = 1.3

FULL_LENGTH = 30
FULL_STEPS = 200
SMOKE_LENGTH = 20
SMOKE_STEPS = 25


def make_inputs(length: int, seed: int = 0):
    """A deep linear path with a generator-drawn mixed base workload."""
    levels = [LevelSpec(f"L{i}") for i in range(length)]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    objects = 50_000
    for position in range(1, length + 1):
        name = path.class_at(position)
        per_class[name] = ClassStats(
            objects=objects, distinct=max(10, objects // 5), fanout=1
        )
        objects = max(100, objects // 4)
    stats = PathStatistics(path, per_class)
    load = WorkloadGenerator(seed).mixed(
        path, query_weight=2.0, update_weight=1.0, total=1.0
    )
    return stats, load


def drift_sequence(
    stats: PathStatistics,
    base_load: LoadDistribution,
    steps: int,
    seed: int,
    drift: str,
) -> list[LoadDistribution]:
    """The per-step loads of a reproducible drifting workload.

    Each step scales one component of one class's triplet by a random
    factor in ``[0.6, 1.6]`` (a small additive floor keeps zero
    frequencies drifting too). ``edge`` drift draws the class from the
    last two path positions; ``mixed`` drift draws it uniformly.
    """
    rng = random.Random(seed)
    path = stats.path
    length = stats.length
    loads: list[LoadDistribution] = []
    current = base_load
    for _ in range(steps):
        if drift == "edge":
            position = rng.choice([length, length, length, length - 1])
        else:
            position = rng.randint(1, length)
        target = rng.choice(stats.members(position))
        component = rng.choice(["query", "insert", "delete"])
        factor = rng.uniform(0.6, 1.6)
        triplets = {}
        for name, triplet in current.items():
            if name == target:
                values = {
                    "query": triplet.query,
                    "insert": triplet.insert,
                    "delete": triplet.delete,
                }
                values[component] = values[component] * factor + 1e-4
                triplet = LoadTriplet(**values)
            triplets[name] = triplet
        current = LoadDistribution(path, triplets)
        loads.append(current)
    return loads


def run_rerun_loop(
    stats: PathStatistics, loads: list[LoadDistribution]
) -> tuple[float, list[float]]:
    """The baseline: full compute + fresh exact search every step."""
    costs: list[float] = []
    started = time.perf_counter()
    for load in loads:
        matrix = CostMatrix.compute(stats, load, workers=0)
        costs.append(get_strategy("dynamic_program").search(matrix).cost)
    return (time.perf_counter() - started) * 1000.0, costs


def run_session_loop(
    stats: PathStatistics,
    base_load: LoadDistribution,
    loads: list[LoadDistribution],
    kernel: str = "auto",
) -> tuple[float, list[float], dict]:
    """The incremental loop, with per-step work counters from the reports."""
    session = AdvisorSession(stats, base_load, workers=0, kernel=kernel)
    session.advise()  # baseline search outside the timed loop, like rerun
    costs: list[float] = []
    recomputed = 0
    patched = 0
    relaxed = 0
    sliced = 0
    started = time.perf_counter()
    for load in loads:
        report = session.apply(load=load)
        result = session.advise()
        costs.append(result.cost)
        recomputed += len(report.recomputed_rows)
        patched += len(report.patched_rows)
        sliced += report.kernel_slice_rows
        relaxed += result.extras.get("relaxed_positions", stats.length)
    elapsed = (time.perf_counter() - started) * 1000.0
    steps = max(1, len(loads))
    counters = {
        "mean_rows_recomputed": round(recomputed / steps, 2),
        "mean_rows_patched": round(patched / steps, 2),
        "mean_kernel_slice_rows": round(sliced / steps, 2),
        "mean_positions_relaxed": round(relaxed / steps, 2),
        "total_rows": session.matrix.row_count(),
    }
    return elapsed, costs, counters


def measure(length: int, steps: int, drift: str, seed: int = 0) -> dict:
    """One drift shape end to end, with the bit-identity assertions.

    The session loop runs twice — kernel-on (columnar dirty slices over
    cached/patched lowerings) and kernel-off (legacy evaluator) — and
    both must reproduce the rerun loop's per-step costs exactly;
    ``session_ms`` keeps its historical meaning (the session at its best
    available engine) and ``kernel_session_speedup`` records the
    kernel-on/kernel-off ratio. Without numpy only the kernel-off loop
    runs and the kernel fields stay ``None``.
    """
    stats, base_load = make_inputs(length, seed=seed)
    loads = drift_sequence(stats, base_load, steps, seed=seed + 1, drift=drift)
    rerun_ms, rerun_costs = run_rerun_loop(stats, loads)
    off_ms, off_costs, off_counters = run_session_loop(
        stats, base_load, loads, kernel="legacy"
    )
    assert off_costs == rerun_costs, (
        "kernel-off session loop diverged from rerun-everything loop"
    )
    if columnar_kernel.is_available():
        session_ms, session_costs, counters = run_session_loop(
            stats, base_load, loads, kernel="columnar"
        )
        assert session_costs == rerun_costs, (
            "kernel-on session loop diverged from rerun-everything loop"
        )
        kernel_speedup = (
            round(off_ms / session_ms, 2) if session_ms else None
        )
    else:
        session_ms, counters = off_ms, off_counters
        kernel_speedup = None
    return {
        "length": length,
        "steps": steps,
        "drift": drift,
        "rerun_ms": round(rerun_ms, 1),
        "session_ms": round(session_ms, 1),
        "session_kernel_off_ms": round(off_ms, 1),
        "rerun_per_step_ms": round(rerun_ms / steps, 3),
        "session_per_step_ms": round(session_ms / steps, 3),
        "speedup": round(rerun_ms / session_ms, 2) if session_ms else None,
        "kernel_session_speedup": kernel_speedup,
        **counters,
    }


def run(smoke: bool) -> dict:
    """All measurements for one mode."""
    if smoke:
        measurements = [
            measure(SMOKE_LENGTH, SMOKE_STEPS, "edge"),
            measure(SMOKE_LENGTH, SMOKE_STEPS, "mixed"),
        ]
    else:
        measurements = [
            measure(FULL_LENGTH, FULL_STEPS, "edge"),
            measure(FULL_LENGTH, 50, "mixed"),
        ]
    return {
        "benchmark": "whatif",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "environment": environment_metadata(),
        "numpy_available": columnar_kernel.is_available(),
        "target_speedup": FULL_TARGET_SPEEDUP,
        "kernel_session_target": KERNEL_SESSION_TARGET,
        "measurements": measurements,
    }


def check_smoke(report: dict) -> list[str]:
    """Smoke failures (empty when the guard passes)."""
    failures = []
    edge = next(
        m for m in report["measurements"] if m["drift"] == "edge"
    )
    if edge["speedup"] is not None and edge["speedup"] < SMOKE_MIN_SPEEDUP:
        failures.append(
            f"edge-drift speedup {edge['speedup']:.2f}x below the "
            f"{SMOKE_MIN_SPEEDUP:.1f}x smoke threshold"
        )
    kernel_speedup = edge.get("kernel_session_speedup")
    if kernel_speedup is not None and kernel_speedup < KERNEL_SESSION_SMOKE_MIN:
        failures.append(
            f"kernel-on session loop only {kernel_speedup:.2f}x over "
            f"kernel-off on edge drift (smoke floor "
            f"{KERNEL_SESSION_SMOKE_MIN:.1f}x)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short loop only; non-zero exit when the speedup collapses",
    )
    parser.add_argument(
        "--json-path",
        default=None,
        help=f"output path (default benchmarks/results/{JSON_NAME})",
    )
    arguments = parser.parse_args(argv)

    report = run(arguments.smoke)
    json_path = (
        pathlib.Path(arguments.json_path)
        if arguments.json_path
        else RESULTS_DIR / JSON_NAME
    )
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {json_path}", file=sys.stderr)

    if arguments.smoke:
        failures = check_smoke(report)
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
