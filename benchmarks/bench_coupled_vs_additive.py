"""Ablation: the paper's additive decomposition vs exact coupled evaluation.

The cost-matrix decomposition prices each subpath independently, routing
upstream query mass through the Section 3.2 workload derivation with the
oid fan-in as probe count. The exact (coupled) evaluator instead chains
the query through the concrete configuration. This ablation quantifies the
approximation error over random workloads and verifies it does not change
the winner on the Figure 7 experiment.
"""

from benchmarks.conftest import write_report
from repro.core.cost_matrix import CostMatrix
from repro.core.evaluation import configuration_cost, coupled_configuration_cost
from repro.search import get_strategy
from repro.paper import figure7_statistics
from repro.reporting.tables import ascii_table
from repro.workload.generator import WorkloadGenerator


def sweep():
    stats = figure7_statistics()
    rows = []
    errors = []
    generator = WorkloadGenerator(seed=17)
    for index in range(8):
        load = generator.mixed(
            stats.path, query_weight=3.0, update_weight=1.0, total=1.0
        )
        matrix = CostMatrix.compute(stats, load)
        result = get_strategy("exhaustive", keep_all=True).search(matrix)
        # Rank all 8 partitions under both evaluations.
        additive = {
            config.partition(): cost
            for config, cost in result.extras["all_costs"]
        }
        coupled = {
            config.partition(): coupled_configuration_cost(
                stats, load, config
            ).total
            for config, _ in result.extras["all_costs"]
        }
        best_additive = min(additive, key=additive.get)
        best_coupled = min(coupled, key=coupled.get)
        relative_error = abs(
            additive[best_additive] - coupled[best_additive]
        ) / max(coupled[best_additive], 1e-9)
        errors.append(relative_error)
        rows.append(
            [
                index,
                str(best_additive),
                str(best_coupled),
                f"{additive[best_additive]:.2f}",
                f"{coupled[best_additive]:.2f}",
                f"{100 * relative_error:.1f}%",
                "yes" if best_additive == best_coupled else "no",
            ]
        )
    return rows, errors


def test_coupled_vs_additive(benchmark):
    rows, errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    agreement = sum(1 for row in rows if row[-1] == "yes")
    # The additive approximation must pick the coupled-optimal partition
    # most of the time and stay within a bounded relative error.
    assert agreement >= len(rows) - 2
    assert max(errors) < 0.6
    report = ascii_table(
        [
            "workload",
            "additive winner",
            "coupled winner",
            "additive cost",
            "coupled cost",
            "rel. error",
            "agree",
        ],
        rows,
        title=(
            "Additive (paper) vs coupled (exact) configuration evaluation\n"
            "on Figure 7 statistics with random workloads"
        ),
    )
    write_report("coupled_vs_additive", report)
