"""Resilience overhead: checkpointing and fault-tolerant ingestion.

Two costs of the ``repro.resilience`` layer, measured on the same
production-shaped stream as ``bench_trace_replay``:

* **checkpoint overhead** — a continuous replay that snapshots the full
  advisor state (:func:`~repro.resilience.save_advisor`) after every
  window-sized chunk, versus the same replay without checkpoints. The
  restored advisor must finish the stream **bit-identically** to the
  uninterrupted one (asserted, not assumed); the report records the
  per-checkpoint save cost, the one-shot restore cost, and the file
  size.
* **faulty-stream throughput** — sustained events/second when ~1% of
  the trace lines are corrupted (seeded, via
  :class:`~repro.resilience.faults.FaultInjector`) and the replay reads
  through ``iter_trace(on_error="collect")``, versus the clean-stream
  throughput of the same trace.

Results land in ``benchmarks/results/BENCH_resilience.json``; the
``--smoke`` guards are deliberately generous (machine noise must never
flake CI) but catch the failure modes that matter: checkpointing
becoming pathologically slow, or the tolerant read path collapsing
ingestion throughput.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_resilience.py           # full
    PYTHONPATH=src:. python benchmarks/bench_resilience.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import tempfile
import time

from benchmarks.bench_trace_replay import WINDOW, make_edge_load
from benchmarks.env_meta import environment_metadata
from benchmarks.bench_whatif_loop import make_inputs
from repro.resilience import restore_advisor, save_advisor
from repro.resilience.faults import FaultInjector
from repro.trace import (
    ContinuousAdvisor,
    TraceReadReport,
    generate_trace,
    iter_trace,
    write_trace,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_resilience.json"

FULL_LENGTH = 30
FULL_EVENTS = 4000
SMOKE_LENGTH = 20
SMOKE_EVENTS = 1500

#: Corrupt ~1 line in 100 of the ingested stream (the injected-fault
#: rate the ISSUE's throughput comparison is defined against).
FAULT_RATE = 0.01

#: Smoke guards: a checkpoint snapshot that takes longer than this is
#: pathological (they are ~10 KB JSONL writes), and the tolerant read
#: path must keep at least this fraction of clean-stream throughput.
SMOKE_SAVE_LIMIT_MS = 250.0
SMOKE_MIN_THROUGHPUT_RATIO = 0.2


def make_stream(length: int, events: int, seed: int = 0):
    stats, _generated = make_inputs(length, seed=seed)
    base_load = make_edge_load(stats)
    trace = generate_trace(
        stats.path,
        "edge_drift",
        events,
        seed=seed + 1,
        edge_share=1.0,
        drift_intensity=0.6,
    )
    return stats, base_load, trace


def advisor_for(stats, base_load) -> ContinuousAdvisor:
    return ContinuousAdvisor(
        stats, base_load, window=WINDOW, threshold=0.25, hysteresis=2, workers=0
    )


def measure_checkpoint(length: int, events: int, seed: int = 0) -> dict:
    """Checkpoint-per-chunk replay vs the same replay without."""
    stats, base_load, trace = make_stream(length, events, seed)

    clean = advisor_for(stats, base_load)
    started = time.perf_counter()
    clean.replay(trace)
    clean_ms = (time.perf_counter() - started) * 1000.0

    with tempfile.TemporaryDirectory() as scratch:
        path = pathlib.Path(scratch) / "advisor.ckpt"
        checkpointed = advisor_for(stats, base_load)
        save_ms = 0.0
        saves = 0
        for offset in range(0, len(trace), WINDOW):
            checkpointed.process(trace[offset : offset + WINDOW])
            started = time.perf_counter()
            save_advisor(checkpointed, path)
            save_ms += (time.perf_counter() - started) * 1000.0
            saves += 1
        checkpointed.flush()
        checkpoint_bytes = path.stat().st_size

        started = time.perf_counter()
        restored = restore_advisor(path, stats, base_load)
        restore_ms = (time.perf_counter() - started) * 1000.0
        restored.flush()

    # The final checkpoint was taken after the whole stream, so the
    # restored advisor's timeline must equal the uninterrupted run's.
    assert [s.to_dict() for s in restored.steps] == [
        s.to_dict() for s in clean.steps
    ], "restored replay diverged from the uninterrupted replay"

    return {
        "length": length,
        "events": events,
        "window": WINDOW,
        "checkpoints": saves,
        "clean_replay_ms": round(clean_ms, 1),
        "save_ms_total": round(save_ms, 1),
        "save_ms_per_checkpoint": round(save_ms / max(1, saves), 2),
        "restore_ms": round(restore_ms, 2),
        "checkpoint_bytes": checkpoint_bytes,
        "overhead_pct": (
            round(100.0 * save_ms / clean_ms, 1) if clean_ms else None
        ),
    }


def measure_faulty_throughput(length: int, events: int, seed: int = 0) -> dict:
    """Events/second over a ~1%-corrupted stream vs the clean stream."""
    stats, base_load, trace = make_stream(length, events, seed)

    with tempfile.TemporaryDirectory() as scratch:
        clean_path = pathlib.Path(scratch) / "clean.jsonl"
        write_trace(trace, clean_path)
        faulty_path = pathlib.Path(scratch) / "faulty.jsonl"
        write_trace(trace, faulty_path)
        corruptions = max(1, int(len(trace) * FAULT_RATE))
        injected = FaultInjector(seed=seed).corrupt_trace(
            faulty_path, corruptions=corruptions
        )

        clean_advisor = advisor_for(stats, base_load)
        started = time.perf_counter()
        clean_advisor.replay(iter_trace(clean_path))
        clean_ms = (time.perf_counter() - started) * 1000.0

        report = TraceReadReport()
        faulty_advisor = advisor_for(stats, base_load)
        started = time.perf_counter()
        faulty_advisor.replay(
            iter_trace(faulty_path, on_error="collect", report=report)
        )
        faulty_ms = (time.perf_counter() - started) * 1000.0

    assert report.skipped_lines == injected, (
        "tolerant read did not account for every injected corruption"
    )
    clean_rate = round(events / (clean_ms / 1000.0)) if clean_ms else None
    survivors = events - len(injected)
    faulty_rate = round(survivors / (faulty_ms / 1000.0)) if faulty_ms else None
    return {
        "length": length,
        "events": events,
        "corrupted_lines": len(injected),
        "fault_rate": FAULT_RATE,
        "clean_events_per_second": clean_rate,
        "faulty_events_per_second": faulty_rate,
        "throughput_ratio": (
            round(faulty_rate / clean_rate, 3)
            if clean_rate and faulty_rate
            else None
        ),
    }


def run(smoke: bool) -> dict:
    """All measurements for one mode."""
    length = SMOKE_LENGTH if smoke else FULL_LENGTH
    events = SMOKE_EVENTS if smoke else FULL_EVENTS
    return {
        "benchmark": "resilience",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "environment": environment_metadata(),
        "checkpoint": measure_checkpoint(length, events),
        "faulty_stream": measure_faulty_throughput(length, events),
    }


def check_smoke(report: dict) -> list[str]:
    """Smoke failures (empty when the guards pass)."""
    failures: list[str] = []
    checkpoint = report["checkpoint"]
    if checkpoint["save_ms_per_checkpoint"] > SMOKE_SAVE_LIMIT_MS:
        failures.append(
            f"checkpoint save took "
            f"{checkpoint['save_ms_per_checkpoint']:.1f} ms per snapshot "
            f"(limit {SMOKE_SAVE_LIMIT_MS:.0f} ms)"
        )
    faulty = report["faulty_stream"]
    ratio = faulty["throughput_ratio"]
    if ratio is not None and ratio < SMOKE_MIN_THROUGHPUT_RATIO:
        failures.append(
            f"faulty-stream throughput fell to {ratio:.2f}x of clean "
            f"(floor {SMOKE_MIN_THROUGHPUT_RATIO:.2f}x)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short stream only; non-zero exit when a guard trips",
    )
    parser.add_argument(
        "--json-path",
        default=None,
        help=f"output path (default benchmarks/results/{JSON_NAME})",
    )
    arguments = parser.parse_args(argv)

    report = run(arguments.smoke)
    json_path = (
        pathlib.Path(arguments.json_path)
        if arguments.json_path
        else RESULTS_DIR / JSON_NAME
    )
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {json_path}", file=sys.stderr)

    if arguments.smoke:
        failures = check_smoke(report)
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
