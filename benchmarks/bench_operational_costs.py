"""Operational microbenchmark: measured page accesses per organization.

The operational counterpart of the Figure 8 comparison: the same database,
the same operations, three whole-path organizations plus the paper's
optimal split — measured page accesses per operation type, plus wall-clock
timing of the query path through the simulator.
"""

from benchmarks.conftest import write_report
from repro.core.configuration import IndexConfiguration
from repro.costmodel.params import ClassStats
from repro.indexes.executor import PathQueryExecutor
from repro.indexes.manager import ConfigurationIndexSet
from repro.organizations import IndexOrganization
from repro.reporting.tables import ascii_table
from repro.synth import LevelSpec, linear_path_schema, populate_path_database

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX

CONFIGS = {
    "whole-path MX": IndexConfiguration.whole_path(4, MX),
    "whole-path MIX": IndexConfiguration.whole_path(4, MIX),
    "whole-path NIX": IndexConfiguration.whole_path(4, NIX),
    "split NIX|MX": IndexConfiguration.of((1, 2, NIX), (3, 4, MX)),
}

SPECS = {
    "P": ClassStats(objects=4000, distinct=800, fanout=1),
    "V": ClassStats(objects=400, distinct=150, fanout=2),
    "VSub1": ClassStats(objects=200, distinct=100, fanout=2),
    "VSub2": ClassStats(objects=200, distinct=100, fanout=2),
    "C": ClassStats(objects=200, distinct=80, fanout=2),
    "D": ClassStats(objects=100, distinct=40, fanout=1),
}


def build_world():
    schema, path = linear_path_schema(
        [
            LevelSpec("P", multi_valued=False),
            LevelSpec("V", subclasses=2, multi_valued=True),
            LevelSpec("C", multi_valued=True),
            LevelSpec("D"),
        ]
    )
    return schema, path, populate_path_database(schema, path, SPECS, seed=21)


def measure_all():
    rows = []
    for label, config in CONFIGS.items():
        _schema, path, database = build_world()
        indexes = ConfigurationIndexSet(database, path, config)
        executor = PathQueryExecutor(indexes)
        values = sorted(
            {v for d in database.extent("D") for v in d.value_list("label")},
            key=repr,
        )[:10]
        query_cost = sum(
            executor.query(value, "P").stats.total for value in values
        ) / len(values)
        d_extent = [i.oid for i in list(database.extent("D"))[:5]]
        delete_cost = sum(
            executor.delete(oid).stats.total for oid in d_extent
        ) / len(d_extent)
        supplier = next(database.extent("D")).oid
        insert_cost = (
            executor.insert("C", ref3=[supplier], payload=0).stats.total
        )
        rows.append(
            [
                label,
                f"{query_cost:.1f}",
                f"{insert_cost:.1f}",
                f"{delete_cost:.1f}",
            ]
        )
    return rows


def test_operational_page_costs(benchmark):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    by_label = {row[0]: row for row in rows}
    # NIX answers queries in the fewest pages; MX pays the full chain.
    assert float(by_label["whole-path NIX"][1]) <= float(
        by_label["whole-path MX"][1]
    )
    # NIX deletion of an ending-class object costs the most maintenance.
    assert float(by_label["whole-path NIX"][3]) >= float(
        by_label["whole-path MIX"][3]
    )
    report = ascii_table(
        ["configuration", "query pages", "insert pages", "delete pages"],
        rows,
        title=(
            "Measured page accesses per operation (operational simulator,\n"
            "4-level synthetic path, mean over 10 queries / 5 deletes)"
        ),
    )
    write_report("operational_costs", report)
