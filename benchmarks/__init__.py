"""Benchmark suite: one module per reproduced table/figure plus ablations."""
