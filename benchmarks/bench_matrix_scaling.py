"""Section 5 size claim: the cost matrix has ``3 · n(n+1)/2`` entries.

"Because in practice a path has rarely a length greater than 7 the
complexity is determined by the expression 3 * O(n(n+1)/2) which is the
size of the matrix." The benchmark measures Cost_Matrix computation time
across path lengths, verifies the entry-count formula, and times a
dynamic-program search over the array-backed matrix (every ``min_cost``
is an O(1) read of the precomputed row minima).
"""

from benchmarks.conftest import write_report
from repro.core.cost_matrix import CostMatrix
from repro.costmodel.params import ClassStats, PathStatistics
from repro.reporting.tables import ascii_table
from repro.search import get_strategy
from repro.synth import LevelSpec, linear_path_schema
from repro.workload.load import LoadDistribution

LENGTHS = [2, 3, 4, 5, 6, 7, 8, 10, 12]


def make_inputs(length: int):
    levels = [LevelSpec(f"L{i}") for i in range(length)]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    objects = 50_000
    for position in range(1, length + 1):
        name = path.class_at(position)
        per_class[name] = ClassStats(
            objects=objects, distinct=max(10, objects // 5), fanout=1
        )
        objects = max(100, objects // 4)
    stats = PathStatistics(path, per_class)
    load = LoadDistribution.uniform(path, query=0.2, insert=0.05, delete=0.05)
    return stats, load


def test_matrix_entry_count_and_time(benchmark):
    import time

    rows = []

    dp = get_strategy("dynamic_program")

    def sweep():
        local_rows = []
        for length in LENGTHS:
            stats, load = make_inputs(length)
            started = time.perf_counter()
            matrix = CostMatrix.compute(stats, load)
            elapsed = (time.perf_counter() - started) * 1000
            expected_entries = 3 * length * (length + 1) // 2
            assert matrix.entry_count() == expected_entries
            started = time.perf_counter()
            result = dp.search(matrix)
            search_elapsed = (time.perf_counter() - started) * 1000
            assert result.extras["rows_inspected"] == matrix.row_count()
            local_rows.append(
                [
                    length,
                    matrix.row_count(),
                    expected_entries,
                    f"{elapsed:.1f}",
                    f"{search_elapsed:.2f}",
                ]
            )
        return local_rows

    rows = benchmark(sweep)
    report = ascii_table(
        [
            "path length",
            "rows n(n+1)/2",
            "entries 3*n(n+1)/2",
            "compute ms",
            "dp search ms",
        ],
        rows,
        title="Cost_Matrix size and computation time (Section 5 complexity claim)",
    )
    write_report("matrix_scaling", report)
