"""Section 5 size claim and the PR 2 construction speedups.

"Because in practice a path has rarely a length greater than 7 the
complexity is determined by the expression 3 * O(n(n+1)/2) which is the
size of the matrix." The benchmark measures Cost_Matrix computation time
across path lengths, verifies the entry-count formula, and times a
dynamic-program search over the array-backed matrix (every ``min_cost``
is an O(1) read of the precomputed row minima).

``test_construction_speedups`` additionally proves the three PR 2 wins on
a length-30 path — context hoisting + evaluation caching against a PR 1
style per-entry build, worker-pool parity, and incremental recompute —
sharing the measurement code with :mod:`benchmarks.run_all` (which writes
the machine-readable ``BENCH_costmatrix.json``).
"""

from benchmarks.conftest import write_report
from benchmarks.run_all import (
    make_inputs,
    perturb_ending_insert,
    time_compute,
    time_incremental,
    time_pr1_baseline,
)
from repro.core.cost_matrix import CostMatrix
from repro.reporting.tables import ascii_table
from repro.search import get_strategy

LENGTHS = [2, 3, 4, 5, 6, 7, 8, 10, 12]

#: Length of the speedup measurements (the ROADMAP's problem size).
SPEEDUP_LENGTH = 30

#: Generous regression floors: the measured speedups are ~6x (hoisting)
#: and ~12x (incremental) on one 2020s core; the assertions only trip
#: when a change genuinely loses the evaluation layer, not on CI noise.
MIN_SERIAL_SPEEDUP = 3.0
MIN_INCREMENTAL_SPEEDUP = 4.0


def test_matrix_entry_count_and_time(benchmark):
    import time

    rows = []

    dp = get_strategy("dynamic_program")

    def sweep():
        local_rows = []
        for length in LENGTHS:
            stats, load = make_inputs(length)
            started = time.perf_counter()
            matrix = CostMatrix.compute(stats, load)
            elapsed = (time.perf_counter() - started) * 1000
            expected_entries = 3 * length * (length + 1) // 2
            assert matrix.entry_count() == expected_entries
            started = time.perf_counter()
            result = dp.search(matrix)
            search_elapsed = (time.perf_counter() - started) * 1000
            assert result.extras["rows_inspected"] == matrix.row_count()
            local_rows.append(
                [
                    length,
                    matrix.row_count(),
                    expected_entries,
                    f"{elapsed:.1f}",
                    f"{search_elapsed:.2f}",
                ]
            )
        return local_rows

    rows = benchmark(sweep)
    report = ascii_table(
        [
            "path length",
            "rows n(n+1)/2",
            "entries 3*n(n+1)/2",
            "compute ms",
            "dp search ms",
        ],
        rows,
        title="Cost_Matrix size and computation time (Section 5 complexity claim)",
    )
    write_report("matrix_scaling", report)


def test_construction_speedups(benchmark):
    """The three PR 2 wins at length 30: hoisting, workers, incremental."""

    def measure():
        baseline_ms = time_pr1_baseline(SPEEDUP_LENGTH)
        serial_ms = time_compute(SPEEDUP_LENGTH, workers=0)
        parallel_ms = time_compute(SPEEDUP_LENGTH, workers=2, repeats=1)
        incremental = time_incremental(SPEEDUP_LENGTH)
        return baseline_ms, serial_ms, parallel_ms, incremental

    baseline_ms, serial_ms, parallel_ms, incremental = benchmark(measure)

    # Worker output is bit-identical to serial regardless of worker count.
    stats, load = make_inputs(SPEEDUP_LENGTH)
    serial_matrix = CostMatrix.compute(stats, load, workers=0)
    parallel_matrix = CostMatrix.compute(
        make_inputs(SPEEDUP_LENGTH)[0], load, workers=2
    )
    for start, end in serial_matrix.rows():
        for organization in serial_matrix.organizations:
            assert parallel_matrix.cost(start, end, organization) == (
                serial_matrix.cost(start, end, organization)
            )

    serial_speedup = baseline_ms / serial_ms
    assert serial_speedup >= MIN_SERIAL_SPEEDUP, (
        f"hoisting+caching regressed: {serial_speedup:.1f}x vs PR 1 style "
        f"baseline (floor {MIN_SERIAL_SPEEDUP}x)"
    )
    assert incremental["speedup"] >= MIN_INCREMENTAL_SPEEDUP, (
        f"incremental recompute regressed: {incremental['speedup']:.1f}x "
        f"vs full recompute (floor {MIN_INCREMENTAL_SPEEDUP}x)"
    )
    # The dirty set of a single ending-class insert change is exactly the
    # rows ending at the last position.
    assert incremental["dirty_rows"] == SPEEDUP_LENGTH

    report = ascii_table(
        ["measurement", "ms", "speedup"],
        [
            ["PR 1 style per-entry build", f"{baseline_ms:.1f}", "1.0x"],
            [
                "serial (hoisting + caching)",
                f"{serial_ms:.1f}",
                f"{serial_speedup:.1f}x",
            ],
            [
                "2-worker pool (parity-checked)",
                f"{parallel_ms:.1f}",
                f"{baseline_ms / parallel_ms:.1f}x",
            ],
            [
                "full recompute after load change",
                f"{incremental['full_recompute_ms']:.1f}",
                "-",
            ],
            [
                "incremental recompute (dirty rows only)",
                f"{incremental['incremental_ms']:.1f}",
                f"{incremental['speedup']:.1f}x vs full",
            ],
        ],
        title=(
            f"Cost_Matrix construction speedups at length {SPEEDUP_LENGTH} "
            "(PR 2: batched, parallel, incremental)"
        ),
    )
    write_report("matrix_construction_speedups", report)
