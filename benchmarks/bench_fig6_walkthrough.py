"""Figure 6: the hypothetical cost matrix and the Opt_Ind_Con walkthrough.

The paper walks branch-and-bound through a hypothetical 10×3 matrix for
``P_ex = C1.A1.A2.A3.A4``; this benchmark replays it and checks every fact
the prose states: the candidate order, both prune points, the PC_min
evolution 9 → 8, and the final configuration
``{(C1.A1, MX), (C2.A2.A3.A4, NIX)}`` at cost 8.
"""

from benchmarks.conftest import write_report
from repro.search import get_strategy
from repro.organizations import IndexOrganization
from repro.paper import figure6_matrix


def test_fig6_walkthrough(benchmark):
    matrix = figure6_matrix()
    searcher = get_strategy("branch_and_bound")
    result = benchmark(lambda: searcher.search(matrix, keep_trace=True))

    # --- the facts stated in Section 5's prose ---
    assert result.cost == 8.0
    assert result.configuration.partition() == ((1, 1), (2, 4))
    assert result.configuration.assignments[0].organization is IndexOrganization.MX
    assert result.configuration.assignments[1].organization is IndexOrganization.NIX
    assert result.evaluated == 6
    assert result.pruned == 2

    lines = [
        "Figure 6 reproduction: hypothetical cost matrix + Opt_Ind_Con trace",
        "",
        matrix.render(precision=0),
        "",
        "branch-and-bound trace (paper order):",
        *("  " + line for line in result.trace),
        "",
        f"optimal: {result.render()}",
        "paper:   {(C1.A1, MX), (C2.A2.A3.A4, NIX)} with processing cost 8",
    ]
    write_report("fig6_walkthrough", "\n".join(lines))
