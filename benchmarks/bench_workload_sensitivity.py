"""Workload-sensitivity ablation: where configurations cross over.

The paper's motivation is that the best indexing depends on the workload
mix. This ablation sweeps the query:update ratio on the Figure 7 database
and reports, per mix, the costs of the three whole-path single indexes and
of the optimal configuration — exposing the crossovers and the regime
where splitting pays the most.
"""

from benchmarks.conftest import write_report
from repro.core.advisor import advise
from repro.organizations import IndexOrganization
from repro.paper import figure7_statistics, pexa_path
from repro.reporting.tables import ascii_table
from repro.workload.load import LoadDistribution, LoadTriplet

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX

#: query share of the total per-class frequency mass.
QUERY_SHARES = [0.0, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0]


def make_load(path, query_share: float) -> LoadDistribution:
    update_share = (1.0 - query_share) / 2.0
    triplet = LoadTriplet(
        query=0.3 * query_share,
        insert=0.3 * update_share,
        delete=0.3 * update_share,
    )
    return LoadDistribution(path, {name: triplet for name in path.scope})


def sweep():
    stats = figure7_statistics()
    path = stats.path
    rows = []
    optima = []
    for share in QUERY_SHARES:
        load = make_load(path, share)
        report = advise(stats, load)
        rows.append(
            [
                f"{share:.2f}",
                f"{report.single_index_costs[MX]:.2f}",
                f"{report.single_index_costs[MIX]:.2f}",
                f"{report.single_index_costs[NIX]:.2f}",
                f"{report.optimal.cost:.2f}",
                report.optimal.configuration.render(path),
            ]
        )
        optima.append((share, report))
    return rows, optima


def test_workload_sensitivity(benchmark):
    rows, optima = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Shape assertions:
    # 1. the optimal configuration is never worse than any single index;
    for (share, report) in optima:
        best_single = min(report.single_index_costs.values())
        assert report.optimal.cost <= best_single + 1e-9
    # 2. under pure queries, whole-path NIX is the best single index
    #    (single record lookup — the paper's motivation for NIX);
    pure_query = optima[-1][1]
    assert (
        pure_query.single_index_costs[NIX]
        <= min(pure_query.single_index_costs.values()) + 1e-9
    )
    # 3. under pure updates NIX is the *worst* single index (its
    #    maintenance propagates through primary + auxiliary structures).
    pure_update = optima[0][1]
    assert pure_update.single_index_costs[NIX] == max(
        pure_update.single_index_costs.values()
    )

    report_text = ascii_table(
        ["query share", "MX", "MIX", "NIX", "optimal", "optimal configuration"],
        rows,
        title=(
            "Workload sensitivity on Figure 7 statistics\n"
            "(whole-path single-index costs vs the optimal configuration;\n"
            " uniform per-class frequency 0.3 split query/update by share)"
        ),
    )
    write_report("workload_sensitivity", report_text)
