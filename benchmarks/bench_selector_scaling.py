"""Selector scaling ablation: B&B vs exhaustive vs dynamic programming.

The paper proposes branch and bound over the 2^(n-1) recombinations and
notes the theoretical O(2^(n-1)) worst case. A modern treatment solves the
same additive objective exactly in O(n^2) by dynamic programming. This
ablation measures all three on random matrices over a length sweep, and
verifies they agree on the optimum everywhere.
"""

import random
import time

from benchmarks.conftest import write_report
from repro.core.cost_matrix import CostMatrix
from repro.search import get_strategy
from repro.organizations import IndexOrganization
from repro.reporting.tables import ascii_table

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX

LENGTHS = [4, 6, 8, 10, 12, 14, 16]


def random_matrix(length: int, seed: int) -> CostMatrix:
    rng = random.Random(seed)
    values = {}
    for start in range(1, length + 1):
        for end in range(start, length + 1):
            span = end - start + 1
            base = rng.uniform(1, 4) * span
            values[(start, end)] = {
                MX: base * rng.uniform(0.7, 1.4),
                MIX: base * rng.uniform(0.7, 1.4),
                NIX: base * rng.uniform(0.5, 1.8),
            }
    return CostMatrix.from_values(length, values)


def timed(fn) -> tuple[float, object]:
    started = time.perf_counter()
    result = fn()
    return (time.perf_counter() - started) * 1000, result


def sweep():
    rows = []
    for length in LENGTHS:
        bnb_ms = exhaustive_ms = dp_ms = 0.0
        for seed in range(3):
            matrix = random_matrix(length, seed)
            t1, bnb = timed(lambda: get_strategy("branch_and_bound").search(matrix))
            t2, full = timed(lambda: get_strategy("exhaustive").search(matrix))
            t3, dp = timed(lambda: get_strategy("dynamic_program").search(matrix))
            assert abs(bnb.cost - full.cost) < 1e-9
            assert abs(dp.cost - full.cost) < 1e-9
            bnb_ms += t1
            exhaustive_ms += t2
            dp_ms += t3
        rows.append(
            [
                length,
                2 ** (length - 1),
                f"{bnb_ms / 3:.2f}",
                f"{exhaustive_ms / 3:.2f}",
                f"{dp_ms / 3:.3f}",
            ]
        )
    return rows


def test_selector_scaling(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # DP must scale far better than exhaustive on the longest paths.
    last = rows[-1]
    assert float(last[4]) < float(last[3])
    report = ascii_table(
        ["n", "2^(n-1)", "B&B ms", "exhaustive ms", "DP ms"],
        rows,
        title=(
            "Selector scaling (mean of 3 random matrices per length).\n"
            "All three return identical optima; DP is the modern baseline."
        ),
    )
    write_report("selector_scaling", report)
