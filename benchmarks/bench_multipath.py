"""Section 6 extension: joint configuration selection for multiple paths.

"A topic for further research is the extension of the algorithm such that
it may generate index configurations for n paths ... a path may be a
subpath of another path or paths may overlap each other." This benchmark
optimizes the paper's two overlapping paths (P_e and P_exa share
Per.owns.man) jointly and reports the sharing savings.
"""

from benchmarks.conftest import write_report
from repro.core.multipath import PathWorkload, optimize_multipath
from repro.costmodel.params import ClassStats, PathStatistics
from repro.paper import FIGURE7_ROWS, figure7_load, figure7_statistics, pe_path
from repro.reporting.tables import multipath_table
from repro.workload.load import LoadDistribution, LoadTriplet


def make_workloads():
    pexa_workload = PathWorkload(stats=figure7_statistics(), load=figure7_load())
    path = pe_path()
    per_class = {
        name: ClassStats(objects=n, distinct=d, fanout=nin)
        for name, (n, d, nin, _) in FIGURE7_ROWS.items()
        if name in path.scope
    }
    pe_workload = PathWorkload(
        stats=PathStatistics(path, per_class),
        load=LoadDistribution(
            path,
            {name: LoadTriplet(*FIGURE7_ROWS[name][3]) for name in path.scope},
        ),
    )
    return [pexa_workload, pe_workload]


def test_multipath_sharing(benchmark):
    workloads = make_workloads()
    result = benchmark(lambda: optimize_multipath(workloads))

    assert result.total_cost <= result.independent_cost + 1e-9
    assert result.exact

    report = multipath_table(
        [w.stats.path for w in workloads],
        result,
        title="Multi-path joint optimization (P_exa and P_e share Per.owns.man)",
    )
    write_report("multipath", report)
