"""Trace replay: batched ``apply_many`` vs per-event ``apply``.

The ``repro.trace`` subsystem batches every drift window's accumulated
delta into one :meth:`~repro.whatif.AdvisorSession.apply_many` call, so
a window that moved k (class, component) frequencies costs **one**
dirty-set-union matrix recompute instead of k. This benchmark measures
that win on the production-shaped stream: a long path whose operation
mass sits on the last two positions (ingest-side churn) drifting window
by window.

Both loops answer the same windowed delta sequence and re-advise at the
same points:

* **per-event** — every perturbation of a window's batch applied
  individually (k recomputes per window), the PR 4 calling convention;
* **batched** — the whole batch folded through ``apply_many`` (one
  recompute per window).

Per-step costs and configurations must be bit-identical between the
loops (asserted), so the speedup is pure bookkeeping. A second
measurement replays the raw event stream end-to-end through
:class:`~repro.trace.ContinuousAdvisor` (windowing + drift detection +
batched application) and records the sustained events/second.

Results land in ``benchmarks/results/BENCH_trace.json``. The full run
targets a ≥3x batched-over-per-event speedup at path length 30
(``target_speedup``); ``--smoke`` (CI) runs a shorter stream and fails
only when the speedup drops below a generous threshold.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_trace_replay.py           # full
    PYTHONPATH=src:. python benchmarks/bench_trace_replay.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from benchmarks.bench_whatif_loop import make_inputs
from benchmarks.env_meta import environment_metadata
from repro.trace import ContinuousAdvisor, WindowAggregator, generate_trace
from repro.whatif import AdvisorSession
from repro.whatif.perturbation import perturbations_between
from repro.workload.load import LoadDistribution, LoadTriplet


def make_edge_load(stats) -> LoadDistribution:
    """A base workload shaped like the stream: mass on the last two
    positions only, so the first window is a drift step, not a reset of
    every other class's frequency."""
    path = stats.path
    triplets = {}
    for position in (stats.length - 1, stats.length):
        for member in stats.members(position):
            triplets[member] = LoadTriplet(query=0.4, insert=0.15, delete=0.1)
    return LoadDistribution(path, triplets)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_trace.json"

#: The paper-facing target: at length 30 the batched replay must beat
#: the per-event replay by at least this factor (the full run).
FULL_TARGET_SPEEDUP = 3.0

#: CI guard: generous so machine noise never flakes the build, tight
#: enough to catch losing the batching win entirely.
SMOKE_MIN_SPEEDUP = 1.5

FULL_LENGTH = 30
FULL_EVENTS = 6000
SMOKE_LENGTH = 20
SMOKE_EVENTS = 1500

WINDOW = 250


def window_batches(stats, base_load, trace, window):
    """The per-window perturbation batches of a trace, precomputed.

    Each batch is the ``set``-delta from the advisor state *after the
    previous batch* to the window's estimate — exactly what a replay
    applies — so both measured loops consume identical inputs.
    """
    aggregator = WindowAggregator(stats, window)
    batches = []
    current = base_load
    for snapshot in aggregator.feed(trace):
        batch = perturbations_between(stats, current, stats, snapshot.load)
        if not batch:
            continue
        current = snapshot.load
        batches.append(batch)
    return batches


def run_per_event_loop(stats, base_load, batches):
    """Baseline: one ``apply`` (one recompute) per perturbation."""
    session = AdvisorSession(stats, base_load, workers=0)
    session.advise()  # baseline search outside the timed loop
    outcomes = []
    started = time.perf_counter()
    for batch in batches:
        for perturbation in batch:
            session.perturb(perturbation)
        result = session.advise()
        outcomes.append((result.cost, result.configuration))
    return (time.perf_counter() - started) * 1000.0, outcomes


def run_batched_loop(stats, base_load, batches):
    """One ``apply_many`` (one dirty-union recompute) per window batch."""
    session = AdvisorSession(stats, base_load, workers=0)
    session.advise()
    outcomes = []
    started = time.perf_counter()
    for batch in batches:
        session.apply_many(batch)
        result = session.advise()
        outcomes.append((result.cost, result.configuration))
    elapsed = (time.perf_counter() - started) * 1000.0
    assert session.batched_steps == len(batches)
    return elapsed, outcomes


def measure(length: int, events: int, seed: int = 0) -> dict:
    """One replay comparison end to end, with the bit-identity assertion."""
    stats, _generated_load = make_inputs(length, seed=seed)
    base_load = make_edge_load(stats)
    trace = generate_trace(
        stats.path,
        "edge_drift",
        events,
        seed=seed + 1,
        edge_share=1.0,
        drift_intensity=0.6,
    )
    batches = window_batches(stats, base_load, trace, WINDOW)
    per_event_ms, per_event_outcomes = run_per_event_loop(
        stats, base_load, batches
    )
    batched_ms, batched_outcomes = run_batched_loop(stats, base_load, batches)
    assert batched_outcomes == per_event_outcomes, (
        "batched replay diverged from the per-event replay"
    )
    perturbations = sum(len(batch) for batch in batches)
    return {
        "length": length,
        "events": events,
        "window": WINDOW,
        "batches": len(batches),
        "perturbations": perturbations,
        "mean_batch": round(perturbations / max(1, len(batches)), 2),
        "per_event_ms": round(per_event_ms, 1),
        "batched_ms": round(batched_ms, 1),
        "speedup": (
            round(per_event_ms / batched_ms, 2) if batched_ms else None
        ),
    }


def measure_continuous(length: int, events: int, seed: int = 0) -> dict:
    """End-to-end stream consumption through ContinuousAdvisor."""
    stats, _generated_load = make_inputs(length, seed=seed)
    base_load = make_edge_load(stats)
    trace = generate_trace(
        stats.path,
        "edge_drift",
        events,
        seed=seed + 1,
        edge_share=1.0,
        drift_intensity=0.6,
    )
    advisor = ContinuousAdvisor(
        stats,
        base_load,
        window=WINDOW,
        threshold=0.25,
        hysteresis=2,
        workers=0,
    )
    started = time.perf_counter()
    advisor.replay(trace)
    elapsed = (time.perf_counter() - started) * 1000.0
    return {
        "length": length,
        "events": events,
        "window": WINDOW,
        "windows": advisor.windows_seen,
        "windows_held": advisor.windows_held,
        "readvises": advisor.readvise_count,
        "elapsed_ms": round(elapsed, 1),
        "events_per_second": (
            round(events / (elapsed / 1000.0)) if elapsed else None
        ),
    }


def run(smoke: bool) -> dict:
    """All measurements for one mode."""
    length = SMOKE_LENGTH if smoke else FULL_LENGTH
    events = SMOKE_EVENTS if smoke else FULL_EVENTS
    return {
        "benchmark": "trace",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "environment": environment_metadata(),
        "target_speedup": FULL_TARGET_SPEEDUP,
        "measurements": [measure(length, events)],
        "continuous": measure_continuous(length, events),
    }


def check_smoke(report: dict) -> list[str]:
    """Smoke failures (empty when the guard passes)."""
    replay = report["measurements"][0]
    if replay["speedup"] is not None and replay["speedup"] < SMOKE_MIN_SPEEDUP:
        return [
            f"batched replay speedup {replay['speedup']:.2f}x below the "
            f"{SMOKE_MIN_SPEEDUP:.1f}x smoke threshold"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short stream only; non-zero exit when the speedup collapses",
    )
    parser.add_argument(
        "--json-path",
        default=None,
        help=f"output path (default benchmarks/results/{JSON_NAME})",
    )
    arguments = parser.parse_args(argv)

    report = run(arguments.smoke)
    json_path = (
        pathlib.Path(arguments.json_path)
        if arguments.json_path
        else RESULTS_DIR / JSON_NAME
    )
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {json_path}", file=sys.stderr)

    if arguments.smoke:
        failures = check_smoke(report)
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
