"""Columnar kernel vs legacy evaluator: end-to-end matrix builds.

The PR 6 tentpole: ``CostMatrix.compute(kernel="columnar")`` prices the
whole matrix as numpy array operations over all (row, organization)
pairs, replacing ~0.8M scalar cost-model calls at path length 40 with a
few hundred vectorized passes. The legacy evaluator stays as the parity
oracle — the two are bit-identical entry by entry (asserted here on
every run, and property-pinned in ``tests/test_kernel_parity.py``).

Three timing regimes, because the legacy path leans on memo tables:

* **fresh** (the primary metric) — every repeat builds a new
  ``PathStatistics`` world *and* clears the module-level Yao memo
  tables, the first-build cost a caller actually pays on new inputs;
* **warm** — same statistics object rebuilt with hot caches, the floor
  for repeated builds inside one process; since PR 9 the columnar side
  hits the persistent ``StatArrays`` lowering cache and must beat warm
  legacy by :data:`WARM_MIN_SPEEDUP`;
* **dirty_slice** (PR 9) — a deterministic edge-drift recompute chain:
  each step re-prices only its dirty rows, columnar as an array-slice
  evaluation over the cached (workload-patched) lowering, legacy as the
  scalar per-row loop.

Results land in ``benchmarks/results/BENCH_kernel.json``. The full run
targets the PR acceptance bar: columnar >= 5x legacy on fresh serial
builds at length 40. ``--smoke`` runs length 20 and fails when the
columnar kernel stops beating legacy on fresh builds, the warm rebuild
drops below the persistent-lowering floor, or the dirty-slice chain
degrades to the scalar path (or numpy is missing, in which case the
smoke run degrades to a fallback check and passes).

Usage::

    PYTHONPATH=src:. python benchmarks/bench_kernel.py           # full
    PYTHONPATH=src:. python benchmarks/bench_kernel.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import statistics
import sys
import time

from benchmarks.env_meta import environment_metadata
from repro import kernel
from repro.core.cost_matrix import CostMatrix
from repro.costmodel import yao
from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.synth import LevelSpec, linear_path_schema
from repro.workload.load import LoadDistribution, LoadTriplet

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_kernel.json"

#: The PR acceptance bar: columnar >= 5x legacy on fresh serial builds
#: at length 40 (the full run records it; measured ~8x on a dev box).
FULL_TARGET_SPEEDUP = 5.0

#: CI guard: generous so machine noise never flakes the build, tight
#: enough to catch the kernel silently degrading to scalar fallbacks.
SMOKE_MIN_SPEEDUP = 1.5

#: PR 9 acceptance: warm rebuilds must hit the persistent StatArrays
#: lowering cache and beat warm legacy builds by at least this factor
#: (guarded in smoke too — a cache regression shows up immediately).
WARM_MIN_SPEEDUP = 3.0

#: CI guard for the dirty-slice recompute chain: columnar slices over
#: cached/patched lowerings must beat the legacy per-row loop. Generous
#: (measured ~3x on edge drift) so noise never flakes the build.
DIRTY_MIN_SPEEDUP = 1.3

#: Steps in the deterministic dirty-slice drift chain.
DIRTY_STEPS = 25

FULL_LENGTH = 40
SMOKE_LENGTH = 20
REPEATS = 5


def make_inputs(length: int):
    """A deep-hierarchy world: subclasses on every third position, big
    cardinalities up front so the Yao estimates hit every regime the
    kernel vectorizes (small-t loop, grouped cumprod, Cardenas)."""
    levels = [
        LevelSpec(f"L{i}", subclasses=(0, 1, 0, 2, 0)[i % 5])
        for i in range(length)
    ]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    objects = 400_000
    for position in range(1, length + 1):
        for member in path.hierarchy_at(position):
            per_class[member] = ClassStats(
                objects=objects, distinct=max(10, objects // 6), fanout=1.0
            )
        objects = max(50, objects // 5)
    stats = PathStatistics(path, per_class, CostModelConfig())
    load = LoadDistribution.uniform(path, query=0.3, insert=0.1, delete=0.05)
    return stats, load


def clear_module_caches() -> None:
    """Drop the module-level Yao memo tables (per-statistics evaluation
    memos die with the fresh ``PathStatistics`` object each repeat)."""
    yao._npa_integer.cache_clear()
    yao._npa_pair.cache_clear()


def time_builds(length: int, kernel_name: str, fresh: bool) -> dict:
    """Best/median milliseconds over REPEATS serial builds."""
    if not fresh:
        warm_inputs = make_inputs(length)
    samples = []
    for _ in range(REPEATS):
        if fresh:
            stats, load = make_inputs(length)
            clear_module_caches()
        else:
            stats, load = warm_inputs
        started = time.perf_counter()
        CostMatrix.compute(
            stats, load, include_noindex=True, workers=0, kernel=kernel_name
        )
        samples.append((time.perf_counter() - started) * 1000.0)
    return {
        "best_ms": round(min(samples), 3),
        "median_ms": round(statistics.median(samples), 3),
    }


def drift_loads(stats, base_load, steps: int):
    """Deterministic edge drift: the ending classes' query frequencies
    oscillate step by step (the ingest-side what-if pattern), so every
    run re-prices the same dirty-row slices."""
    path = stats.path
    edge = {path.class_at(stats.length), path.class_at(stats.length - 1)}
    loads = []
    current = base_load
    for step in range(1, steps + 1):
        factor = 1.0 + 0.1 * (step % 5)
        triplets = {}
        for name, triplet in current.items():
            if name in edge:
                triplet = LoadTriplet(
                    query=triplet.query * factor + 1e-4,
                    insert=triplet.insert,
                    delete=triplet.delete,
                )
            triplets[name] = triplet
        current = LoadDistribution(path, triplets)
        loads.append(current)
    return loads


def time_dirty_slice(length: int, kernel_name: str) -> dict:
    """One deterministic recompute chain: total milliseconds plus the
    kernel-slice row counter summed over every step's report."""
    stats, load = make_inputs(length)
    loads = drift_loads(stats, load, DIRTY_STEPS)
    matrix = CostMatrix.compute(
        stats, load, include_noindex=True, workers=0, kernel=kernel_name
    )
    sliced = 0
    started = time.perf_counter()
    for step_load in loads:
        matrix = matrix.recompute(load=step_load, workers=0)
        sliced += matrix.recompute_report.kernel_slice_rows
    elapsed = (time.perf_counter() - started) * 1000.0
    return {
        "total_ms": round(elapsed, 3),
        "steps": DIRTY_STEPS,
        "kernel_slice_rows": sliced,
    }


def assert_parity(length: int) -> None:
    """Bit-identity of the two kernels on this benchmark's world."""
    stats, load = make_inputs(length)
    legacy = CostMatrix.compute(
        stats, load, include_noindex=True, kernel="legacy"
    )
    columnar = CostMatrix.compute(
        stats, load, include_noindex=True, kernel="columnar"
    )
    for start, end in legacy.rows():
        for organization in legacy.organizations:
            assert columnar.cost(start, end, organization) == legacy.cost(
                start, end, organization
            ), "columnar kernel diverged from the legacy evaluator"


def run(smoke: bool) -> dict:
    length = SMOKE_LENGTH if smoke else FULL_LENGTH
    report = {
        "benchmark": "kernel",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "environment": environment_metadata(),
        "numpy_available": kernel.is_available(),
        "length": length,
        "rows": length * (length + 1) // 2,
        "target_speedup": SMOKE_MIN_SPEEDUP if smoke else FULL_TARGET_SPEEDUP,
    }
    if not kernel.is_available():
        # Pure-Python environment: record the fallback and the legacy
        # timing so the artifact stays comparable across CI jobs.
        report["fresh"] = {"legacy": time_builds(length, "legacy", fresh=True)}
        report["parity_checked"] = False
        return report
    assert_parity(length)
    report["parity_checked"] = True
    report["fresh"] = {
        "legacy": time_builds(length, "legacy", fresh=True),
        "columnar": time_builds(length, "columnar", fresh=True),
    }
    report["warm"] = {
        "legacy": time_builds(length, "legacy", fresh=False),
        "columnar": time_builds(length, "columnar", fresh=False),
    }
    for regime in ("fresh", "warm"):
        timings = report[regime]
        timings["speedup"] = round(
            timings["legacy"]["best_ms"] / timings["columnar"]["best_ms"], 2
        )
    dirty = {
        "legacy": time_dirty_slice(length, "legacy"),
        "columnar": time_dirty_slice(length, "columnar"),
    }
    dirty["speedup"] = round(
        dirty["legacy"]["total_ms"] / dirty["columnar"]["total_ms"], 2
    )
    report["dirty_slice"] = dirty
    return report


def check_smoke(report: dict) -> list[str]:
    """CI guard: the columnar kernel must still beat legacy."""
    if not report["numpy_available"]:
        # The no-numpy CI job runs the fallback check in the test suite;
        # there is no speedup to guard here.
        return []
    failures = []
    speedup = report["fresh"]["speedup"]
    if speedup < SMOKE_MIN_SPEEDUP:
        failures.append(
            f"columnar kernel speedup {speedup:.2f}x on fresh length-"
            f"{report['length']} builds (smoke floor {SMOKE_MIN_SPEEDUP}x)"
        )
    warm = report["warm"]["speedup"]
    if warm < WARM_MIN_SPEEDUP:
        failures.append(
            f"warm-rebuild speedup {warm:.2f}x below the persistent-"
            f"lowering floor ({WARM_MIN_SPEEDUP}x)"
        )
    dirty = report["dirty_slice"]
    if dirty["speedup"] < DIRTY_MIN_SPEEDUP:
        failures.append(
            f"dirty-slice recompute speedup {dirty['speedup']:.2f}x below "
            f"the smoke floor ({DIRTY_MIN_SPEEDUP}x)"
        )
    if dirty["columnar"]["kernel_slice_rows"] == 0:
        failures.append(
            "columnar dirty-slice chain priced zero rows on the kernel "
            "(fell back to the legacy evaluator)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--json-path",
        default=None,
        help=f"output path (default benchmarks/results/{JSON_NAME})",
    )
    arguments = parser.parse_args(argv)
    report = run(arguments.smoke)
    json_path = (
        pathlib.Path(arguments.json_path)
        if arguments.json_path
        else RESULTS_DIR / JSON_NAME
    )
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {json_path}", file=sys.stderr)
    failures = check_smoke(report) if arguments.smoke else []
    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
