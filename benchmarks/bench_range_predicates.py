"""Range-predicate extension sweep (Section 3: "the extension to range
predicates is straightforward").

Sweeps the range selectivity on the Figure 7 statistics and reports, per
organization, the whole-path query cost and the chosen optimal
configuration — exposing the crossover between the contiguous leaf walk of
single-structure organizations (cheap per extra value) and the per-value
oid chaining of MX/MIX (cost grows with every matched value).
"""

from benchmarks.conftest import write_report
from repro.core.advisor import advise
from repro.costmodel.subpath import build_model
from repro.organizations import IndexOrganization
from repro.paper import figure7_load, figure7_statistics
from repro.reporting.tables import ascii_table

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX

SELECTIVITIES = [0.001, 0.01, 0.05, 0.1, 0.25, 0.5]


def sweep():
    stats = figure7_statistics()
    load = figure7_load()
    path = stats.path
    models = {
        organization: build_model(stats, 1, 4, organization)
        for organization in (MX, MIX, NIX)
    }
    rows = []
    optima = []
    for selectivity in SELECTIVITIES:
        costs = {
            organization: model.range_query_cost(1, "Person", selectivity)
            for organization, model in models.items()
        }
        report = advise(stats, load, range_selectivity=selectivity,
                        run_baselines=False)
        optima.append((selectivity, report))
        rows.append(
            [
                f"{selectivity:.3f}",
                f"{costs[MX]:.1f}",
                f"{costs[MIX]:.1f}",
                f"{costs[NIX]:.1f}",
                f"{report.optimal.cost:.2f}",
                report.optimal.configuration.render(path),
            ]
        )
    return rows, optima


def test_range_predicates(benchmark):
    rows, optima = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Costs grow with selectivity for every organization.
    for column in (1, 2, 3):
        series = [float(row[column]) for row in rows]
        assert series == sorted(series)
    # The optimizer keeps returning valid configurations across the sweep.
    for _selectivity, report in optima:
        assert report.optimal.cost > 0
    report_text = ascii_table(
        [
            "selectivity",
            "MX whole-path query",
            "MIX",
            "NIX",
            "optimal cost",
            "optimal configuration",
        ],
        rows,
        title=(
            "Range predicates on Figure 7 statistics: whole-path range-query\n"
            "cost per organization (w.r.t. Person) and the optimizer's choice"
        ),
    )
    write_report("range_predicates", report_text)
