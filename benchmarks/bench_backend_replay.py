"""Ground-truth backend: measured vs predicted page I/O across regimes.

The analytic CRT/CMT formulas predict page accesses; the backend
measures them on real page structures. This benchmark replays one
seeded trace per drift regime (the same regimes
:mod:`benchmarks.bench_trace_replay` drives the continuous advisor
with) against a materialized configuration and records, per regime, the
predicted and measured totals, their ratio, and the per-(subpath,
organization) split. A second section runs the calibration suite and
records the post-fit per-scenario relative errors — the same numbers
the CI accuracy guard (``python -m repro measure --check``) enforces.

The prediction is held at the *initial* statistics while the stream
mutates the database, so drifting regimes are expected to sit farther
from 1.0 than the stationary one; the smoke guard bounds the ratio
instead of pinning it.

Results land in ``benchmarks/results/BENCH_backend.json``.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_backend_replay.py           # full
    PYTHONPATH=src:. python benchmarks/bench_backend_replay.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from benchmarks.env_meta import environment_metadata
from repro.backend import replay_trace, run_calibration
from repro.backend.scenarios import default_scenarios
from repro.trace import TRACE_REGIMES, generate_trace

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_backend.json"

#: Scenario the regime replays run against (fresh world per regime).
FULL_SCENARIO = "mixed-partition-xlarge"
SMOKE_SCENARIO = "mixed-partition-large"

FULL_EVENTS = 600
SMOKE_EVENTS = 200

#: Replay sanity bounds: measured/predicted must stay within this band
#: for every regime. Wide enough for drifted streams, tight enough to
#: catch a broken tracker (ratio near 0) or a detached model (>>1).
RATIO_BOUNDS = (0.4, 2.5)

#: The calibration guard threshold CI enforces.
CALIBRATION_THRESHOLD = 0.15


def scenario_named(name: str):
    for scenario in default_scenarios():
        if scenario.name == name:
            return scenario
    raise KeyError(name)


def measure_regime(scenario_name: str, regime: str, events: int, seed: int) -> dict:
    """Replay one regime's trace on a fresh copy of the scenario world."""
    scenario = scenario_named(scenario_name)
    database, path, stats, configuration = scenario.build()
    trace = generate_trace(path, regime, events, seed=seed)
    started = time.perf_counter()
    report = replay_trace(
        database, path, configuration, trace, seed=seed + 1, stats=stats
    )
    elapsed = (time.perf_counter() - started) * 1000.0
    return {
        "regime": regime,
        "scenario": scenario_name,
        "events": report.events,
        "replayed": report.replayed,
        "skipped": report.skipped,
        "predicted": round(report.predicted_total, 1),
        "measured": report.measured_total,
        "ratio": round(report.ratio, 3),
        "heap_measured": report.heap_measured,
        "elapsed_ms": round(elapsed, 1),
        "parts": [
            {
                "label": part.label,
                "organization": part.organization,
                "predicted": round(part.predicted, 1),
                "measured": part.measured,
            }
            for part in report.parts
        ],
    }


def measure_calibration() -> dict:
    """The accuracy-guard numbers, as the benchmark artifact records them."""
    started = time.perf_counter()
    report = run_calibration()
    elapsed = (time.perf_counter() - started) * 1000.0
    return {
        "scenarios": len(report.scenario_errors()),
        "constants": len(report.constants),
        "max_relative_error": round(report.max_relative_error, 4),
        "threshold": CALIBRATION_THRESHOLD,
        "scenario_errors": {
            name: round(error, 4)
            for name, error in sorted(report.scenario_errors().items())
        },
        "elapsed_ms": round(elapsed, 1),
    }


def run(smoke: bool) -> dict:
    """All measurements for one mode."""
    scenario = SMOKE_SCENARIO if smoke else FULL_SCENARIO
    events = SMOKE_EVENTS if smoke else FULL_EVENTS
    return {
        "benchmark": "backend",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "environment": environment_metadata(),
        "ratio_bounds": list(RATIO_BOUNDS),
        "measurements": [
            measure_regime(scenario, regime, events, seed=17 + i)
            for i, regime in enumerate(TRACE_REGIMES)
        ],
        "calibration": measure_calibration(),
    }


def check_smoke(report: dict) -> list[str]:
    """Smoke failures (empty when the guard passes)."""
    failures: list[str] = []
    low, high = report["ratio_bounds"]
    for row in report["measurements"]:
        if not (low <= row["ratio"] <= high):
            failures.append(
                f"regime {row['regime']}: measured/predicted ratio "
                f"{row['ratio']:.3f} outside [{low}, {high}]"
            )
        if row["replayed"] == 0:
            failures.append(f"regime {row['regime']}: no events replayed")
    calibration = report["calibration"]
    if calibration["max_relative_error"] > calibration["threshold"]:
        failures.append(
            f"calibration max relative error "
            f"{calibration['max_relative_error']:.3f} exceeds "
            f"{calibration['threshold']:.2f}"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "short streams; non-zero exit when a replay ratio leaves its "
            "band or the calibration guard fails"
        ),
    )
    parser.add_argument(
        "--json-path",
        default=None,
        help=f"output path (default benchmarks/results/{JSON_NAME})",
    )
    arguments = parser.parse_args(argv)

    report = run(arguments.smoke)
    json_path = (
        pathlib.Path(arguments.json_path)
        if arguments.json_path
        else RESULTS_DIR / JSON_NAME
    )
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {json_path}", file=sys.stderr)

    if arguments.smoke:
        failures = check_smoke(report)
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
