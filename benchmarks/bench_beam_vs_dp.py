"""Greedy beam search vs the exact dynamic program on long paths.

The paper's regime stops at length ~7, where exhaustive recombination is
trivial. At lengths 20–40 the ``2^(n-1)`` space explodes, the DP stays
exact in O(n²) row lookups, and the beam trades a bounded optimality gap
for an anytime frontier. This benchmark sweeps long synthetic paths and
several beam widths and reports the cost ratio against the DP optimum —
the gap must shrink as the width grows and stay within a small factor
even at width 1 (pure greedy).
"""

import random

from benchmarks.conftest import write_report
from repro.core.cost_matrix import CostMatrix
from repro.costmodel.params import ClassStats, PathStatistics
from repro.reporting.tables import ascii_table, strategy_comparison_table
from repro.search import get_strategy
from repro.synth import LevelSpec, linear_path_schema
from repro.workload.load import LoadDistribution, LoadTriplet

LENGTHS = [12, 20, 30]
WIDTHS = [1, 4, 16]


def make_matrix(length: int, seed: int) -> CostMatrix:
    rng = random.Random(seed)
    levels = [LevelSpec(f"L{i}", multi_valued=i % 3 == 0) for i in range(length)]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    objects = 80_000
    for position in range(1, length + 1):
        name = path.class_at(position)
        distinct = max(10, objects // rng.randint(2, 10))
        per_class[name] = ClassStats(
            objects=objects, distinct=distinct, fanout=rng.choice([1, 1, 2])
        )
        objects = max(50, objects // rng.randint(2, 6))
    stats = PathStatistics(path, per_class)
    load = LoadDistribution(
        path,
        {
            name: LoadTriplet(
                query=rng.uniform(0, 0.4),
                insert=rng.uniform(0, 0.1),
                delete=rng.uniform(0, 0.1),
            )
            for name in path.scope
        },
    )
    return CostMatrix.compute(stats, load)


def sweep() -> tuple[list[list[object]], list[str]]:
    dp = get_strategy("dynamic_program")
    rows: list[list[object]] = []
    examples: list[str] = []
    for length in LENGTHS:
        for width in WIDTHS:
            beam = get_strategy("greedy_beam", width=width)
            ratios = []
            for seed in range(3):
                matrix = make_matrix(length, seed)
                exact = dp.search(matrix)
                approx = beam.search(matrix)
                assert approx.cost >= exact.cost - 1e-9
                ratios.append(approx.cost / exact.cost)
                if seed == 0 and width == WIDTHS[-1]:
                    examples.append(
                        strategy_comparison_table(
                            [exact, approx],
                            title=f"length {length}, width {width}, seed 0",
                            reference_cost=exact.cost,
                        )
                    )
            rows.append(
                [
                    length,
                    width,
                    f"{max(ratios):.4f}",
                    f"{sum(ratios) / len(ratios):.4f}",
                ]
            )
    return rows, examples


def test_beam_tracks_dp_optimum(benchmark):
    rows, examples = benchmark(sweep)

    # Shape: the beam never beats the optimum (asserted inside the sweep)
    # and never strays far at any width. Width-monotonicity is NOT
    # asserted — beam search ranks its frontier by a lower bound, so a
    # wider beam is not guaranteed no-worse on every input; the table
    # reports the trend instead.
    for row in rows:
        assert float(row[2]) < 1.5
    for length in LENGTHS:
        widest_mean = [float(r[3]) for r in rows if r[0] == length][-1]
        assert widest_mean < 1.2

    report = ascii_table(
        ["path length", "beam width", "worst cost ratio", "mean cost ratio"],
        rows,
        title=(
            "Greedy beam search vs exact DP optimum\n"
            "(3 random statistics/workloads per length; ratio = beam/DP)"
        ),
    )
    write_report("beam_vs_dp", report + "\n\n" + "\n\n".join(examples))
