"""Performance runner: records the perf trajectory of the hot loops.

Four benchmark families, each with its own machine-readable artifact:

* **cost matrix** (``BENCH_costmatrix.json``) — the three PR 2 wins on
  synthetic long paths: serial ``CostMatrix.compute`` against a PR 1
  style baseline (per-entry evaluation, no shared row context, caches
  off); the same construction fanned out over a process pool; and
  ``CostMatrix.recompute`` after a single-class load change against a
  full recompute;
* **what-if loop** (``BENCH_whatif.json``, via
  :mod:`benchmarks.bench_whatif_loop`) — the PR 4 end-to-end win: a
  drifting-workload loop answered by an incremental
  :class:`~repro.whatif.AdvisorSession` against rerunning the whole
  pipeline every step;
* **trace replay** (``BENCH_trace.json``, via
  :mod:`benchmarks.bench_trace_replay`) — the PR 5 batching win: a
  windowed operation-stream replay applying each drift batch through
  one ``apply_many`` recompute against one recompute per perturbation;
* **columnar kernel** (``BENCH_kernel.json``, via
  :mod:`benchmarks.bench_kernel`) — the PR 6 win: end-to-end matrix
  builds through the columnar numpy kernel against the legacy per-row
  evaluator, fresh-state and warm-cache regimes.

Usage::

    PYTHONPATH=src:. python benchmarks/run_all.py            # full run
    PYTHONPATH=src:. python benchmarks/run_all.py --smoke    # CI guard

``--smoke`` measures short lengths/loops only and exits non-zero when the
length-20 serial build regresses beyond a (generous) absolute threshold
or the what-if session loop stops beating the rerun loop, so CI catches
order-of-magnitude regressions without flaking on machine noise.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

from benchmarks.env_meta import environment_metadata
from repro.core.cost_matrix import CostMatrix
from repro.costmodel.params import ClassStats, CostModelConfig, PathStatistics
from repro.costmodel.subpath import subpath_processing_cost
from repro.organizations import CONFIGURABLE_ORGANIZATIONS
from repro.synth import LevelSpec, linear_path_schema
from repro.workload.load import LoadDistribution, LoadTriplet

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
JSON_NAME = "BENCH_costmatrix.json"

#: --smoke fails when the length-20 serial build exceeds this. The build
#: takes ~70 ms on a 2020s laptop core; 2000 ms only trips on a real
#: regression (e.g. losing the evaluation caches), not on slow CI.
SMOKE_SERIAL_LIMIT_MS = 2000.0

FULL_LENGTHS = (20, 30)
SMOKE_LENGTHS = (10, 20)


def make_inputs(length: int, cache_evaluation: bool = True):
    """The bench_matrix_scaling synthetic world, configurable caching."""
    levels = [LevelSpec(f"L{i}") for i in range(length)]
    _schema, path = linear_path_schema(levels)
    per_class = {}
    objects = 50_000
    for position in range(1, length + 1):
        name = path.class_at(position)
        per_class[name] = ClassStats(
            objects=objects, distinct=max(10, objects // 5), fanout=1
        )
        objects = max(100, objects // 4)
    config = CostModelConfig(cache_evaluation=cache_evaluation)
    stats = PathStatistics(path, per_class, config)
    load = LoadDistribution.uniform(path, query=0.2, insert=0.05, delete=0.05)
    return stats, load


def time_pr1_baseline(length: int) -> float:
    """Milliseconds for a PR 1 style build: per-entry, contextless, uncached."""
    stats, load = make_inputs(length, cache_evaluation=False)
    started = time.perf_counter()
    for start in range(1, length + 1):
        for end in range(start, length + 1):
            for organization in CONFIGURABLE_ORGANIZATIONS:
                subpath_processing_cost(stats, load, start, end, organization)
    return (time.perf_counter() - started) * 1000.0


def time_compute(length: int, workers: int | None, repeats: int = 3) -> float:
    """Best-of-N milliseconds for ``CostMatrix.compute`` on fresh inputs."""
    best = float("inf")
    for _ in range(repeats):
        stats, load = make_inputs(length)
        started = time.perf_counter()
        CostMatrix.compute(stats, load, workers=workers)
        best = min(best, (time.perf_counter() - started) * 1000.0)
    return best


def perturb_ending_insert(stats, load) -> LoadDistribution:
    """A single-class what-if: bump the ending class's insert frequency."""
    ending = stats.path.class_at(stats.length)
    triplets = {}
    for name, triplet in load.items():
        if name == ending:
            triplet = LoadTriplet(
                query=triplet.query,
                insert=triplet.insert * 2.0 + 0.01,
                delete=triplet.delete,
            )
        triplets[name] = triplet
    return LoadDistribution(load.path, triplets)


def time_incremental(length: int, repeats: int = 3) -> dict:
    """Incremental recompute vs full recompute after one load change."""
    stats, load = make_inputs(length)
    matrix = CostMatrix.compute(stats, load)
    new_load = perturb_ending_insert(stats, load)
    dirty = matrix._dirty_rows(stats, new_load)
    full_ms = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        full = CostMatrix.compute(stats, new_load)
        full_ms = min(full_ms, (time.perf_counter() - started) * 1000.0)
    incremental_ms = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        incremental = matrix.recompute(load=new_load)
        incremental_ms = min(
            incremental_ms, (time.perf_counter() - started) * 1000.0
        )
    for start, end in full.rows():
        for organization in full.organizations:
            assert incremental.cost(start, end, organization) == full.cost(
                start, end, organization
            ), "incremental recompute diverged from full compute"
    return {
        "full_recompute_ms": round(full_ms, 3),
        "incremental_ms": round(incremental_ms, 3),
        "speedup": round(full_ms / incremental_ms, 2) if incremental_ms else None,
        "dirty_rows": len(dirty) if dirty is not None else None,
        "total_rows": matrix.row_count(),
    }


def measure(length: int, parallel_workers: int) -> dict:
    """All three measurements for one path length.

    Order matters and is chronological: the PR 1 baseline runs first
    (cold), the new serial path second, so shared module-level memo tables
    (Yao's formula) never favour the baseline.
    """
    baseline_ms = time_pr1_baseline(length)
    serial_ms = time_compute(length, workers=0)
    parallel_ms = time_compute(length, workers=parallel_workers)
    result = {
        "length": length,
        "rows": length * (length + 1) // 2,
        "pr1_baseline_ms": round(baseline_ms, 3),
        "serial_ms": round(serial_ms, 3),
        "serial_speedup_vs_pr1": round(baseline_ms / serial_ms, 2),
        "parallel_workers": parallel_workers,
        "parallel_ms": round(parallel_ms, 3),
        "parallel_speedup_vs_serial": round(serial_ms / parallel_ms, 2),
        "incremental": time_incremental(length),
    }
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short lengths only; non-zero exit on gross serial regression",
    )
    parser.add_argument(
        "--json-path",
        default=None,
        help=f"output path (default benchmarks/results/{JSON_NAME})",
    )
    arguments = parser.parse_args(argv)

    lengths = SMOKE_LENGTHS if arguments.smoke else FULL_LENGTHS
    cpu_count = os.cpu_count() or 1
    # On a single-CPU box a 2-worker pool still exercises the parallel
    # code path (and the parity guarantee); it just cannot be faster.
    parallel_workers = max(2, cpu_count)

    measurements = [measure(length, parallel_workers) for length in lengths]
    report = {
        "benchmark": "costmatrix",
        "mode": "smoke" if arguments.smoke else "full",
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "environment": environment_metadata(),
        "measurements": measurements,
    }

    json_path = (
        pathlib.Path(arguments.json_path)
        if arguments.json_path
        else RESULTS_DIR / JSON_NAME
    )
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {json_path}", file=sys.stderr)

    failures: list[str] = []
    if arguments.smoke:
        guard = next(m for m in measurements if m["length"] == 20)
        if guard["serial_ms"] > SMOKE_SERIAL_LIMIT_MS:
            failures.append(
                f"length-20 serial build took {guard['serial_ms']:.0f} ms "
                f"(limit {SMOKE_SERIAL_LIMIT_MS:.0f} ms)"
            )

    # The what-if loop and trace-replay benchmarks write their own
    # artifacts next to this one (the CI job uploads all of them) and
    # share the --smoke contract.
    from benchmarks import (
        bench_backend_replay,
        bench_kernel,
        bench_obs,
        bench_resilience,
        bench_trace_replay,
        bench_whatif_loop,
    )

    whatif_report = bench_whatif_loop.run(arguments.smoke)
    whatif_path = json_path.parent / bench_whatif_loop.JSON_NAME
    whatif_path.write_text(
        json.dumps(whatif_report, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(whatif_report, indent=2))
    print(f"\nwritten to {whatif_path}", file=sys.stderr)
    if arguments.smoke:
        failures.extend(bench_whatif_loop.check_smoke(whatif_report))

    trace_report = bench_trace_replay.run(arguments.smoke)
    trace_path = json_path.parent / bench_trace_replay.JSON_NAME
    trace_path.write_text(
        json.dumps(trace_report, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(trace_report, indent=2))
    print(f"\nwritten to {trace_path}", file=sys.stderr)
    if arguments.smoke:
        failures.extend(bench_trace_replay.check_smoke(trace_report))

    kernel_report = bench_kernel.run(arguments.smoke)
    kernel_path = json_path.parent / bench_kernel.JSON_NAME
    kernel_path.write_text(
        json.dumps(kernel_report, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(kernel_report, indent=2))
    print(f"\nwritten to {kernel_path}", file=sys.stderr)
    if arguments.smoke:
        failures.extend(bench_kernel.check_smoke(kernel_report))

    resilience_report = bench_resilience.run(arguments.smoke)
    resilience_path = json_path.parent / bench_resilience.JSON_NAME
    resilience_path.write_text(
        json.dumps(resilience_report, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(resilience_report, indent=2))
    print(f"\nwritten to {resilience_path}", file=sys.stderr)
    if arguments.smoke:
        failures.extend(bench_resilience.check_smoke(resilience_report))

    backend_report = bench_backend_replay.run(arguments.smoke)
    backend_path = json_path.parent / bench_backend_replay.JSON_NAME
    backend_path.write_text(
        json.dumps(backend_report, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(backend_report, indent=2))
    print(f"\nwritten to {backend_path}", file=sys.stderr)
    if arguments.smoke:
        failures.extend(bench_backend_replay.check_smoke(backend_report))

    obs_report = bench_obs.run(arguments.smoke)
    obs_path = json_path.parent / bench_obs.JSON_NAME
    obs_path.write_text(
        json.dumps(obs_report, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(obs_report, indent=2))
    print(f"\nwritten to {obs_path}", file=sys.stderr)
    if arguments.smoke:
        failures.extend(bench_obs.check_smoke(obs_report))

    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
