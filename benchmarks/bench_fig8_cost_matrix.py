"""Figures 7 + 8: the cost matrix of ``P_exa`` from real statistics.

Recomputes the 10×3 matrix of Figure 8 from the Figure 7 database and
workload characteristics using the Section 3 cost models. The scan of
Figure 8 is illegible; the shape facts the prose implies are asserted:
NIX wins the ``Per.owns.man`` row (it is part of the reported optimum),
MX wins ``Comp.divs.name``, and the whole-path rows are far more
expensive than the short-row minima.
"""

from benchmarks.conftest import write_report
from repro.core.cost_matrix import CostMatrix
from repro.organizations import IndexOrganization
from repro.paper import FIGURE7_ROWS


def test_fig8_cost_matrix(benchmark, fig7_inputs):
    stats, load = fig7_inputs
    matrix = benchmark(lambda: CostMatrix.compute(stats, load))

    # --- shape facts implied by Example 5.1 ---
    assert matrix.min_cost(1, 2).organization is IndexOrganization.NIX
    assert matrix.min_cost(3, 4).organization is IndexOrganization.MX
    # Size claims of Section 5: n(n+1)/2 rows, 3x that many entries.
    assert matrix.row_count() == 10
    assert matrix.entry_count() == 30

    fig7_lines = ["class        n        d      nin   (alpha, beta, gamma)"]
    for name, (n, d, nin, (a, b, g)) in FIGURE7_ROWS.items():
        fig7_lines.append(
            f"{name:<10} {n:>8} {d:>8} {nin:>6}   ({a}, {b}, {g})"
        )
    lines = [
        "Figure 7 (inputs, verbatim from the paper):",
        *fig7_lines,
        "",
        "Figure 8 reproduction: cost matrix for Per.owns.man.divs.name",
        "(row minima marked with *; absolute values depend on physical",
        " constants the paper does not state — winners are the result)",
        "",
        matrix.render(stats.path),
    ]
    write_report("fig8_cost_matrix", "\n".join(lines))
