"""Statistics-sensitivity ablation: how the optimum tracks the data shape.

The optimal configuration depends on the database statistics as much as on
the workload. This ablation sweeps the vehicle-level fan-out (``nin`` of
``man``) and the Person population on the Figure 7 setup and reports how
the chosen configuration and the improvement factor move — the kind of
what-if analysis a database administrator would run with the paper's
algorithm.
"""

from benchmarks.conftest import write_report
from repro.core.advisor import advise
from repro.costmodel.params import ClassStats, PathStatistics
from repro.organizations import IndexOrganization
from repro.paper import FIGURE7_ROWS, figure7_load, pexa_path
from repro.reporting.tables import ascii_table

NIX = IndexOrganization.NIX


def stats_with(overrides: dict[str, ClassStats]) -> PathStatistics:
    per_class = {
        name: ClassStats(objects=n, distinct=d, fanout=nin)
        for name, (n, d, nin, _l) in FIGURE7_ROWS.items()
    }
    per_class.update(overrides)
    return PathStatistics(pexa_path(), per_class)


def sweep():
    load = figure7_load()
    rows = []

    for fanout in (1, 2, 3, 5, 8):
        stats = stats_with(
            {"Vehicle": ClassStats(objects=10_000, distinct=5_000, fanout=fanout)}
        )
        report = advise(stats, load)
        rows.append(
            [
                f"nin(Vehicle.man)={fanout}",
                f"{report.optimal.cost:.2f}",
                f"{report.single_index_costs[NIX] / report.optimal.cost:.2f}x",
                report.optimal.configuration.render(stats.path),
            ]
        )

    for persons in (20_000, 100_000, 200_000, 1_000_000):
        stats = stats_with(
            {
                "Person": ClassStats(
                    objects=persons, distinct=max(1000, persons // 10), fanout=1
                )
            }
        )
        report = advise(stats, load)
        rows.append(
            [
                f"n(Person)={persons}",
                f"{report.optimal.cost:.2f}",
                f"{report.single_index_costs[NIX] / report.optimal.cost:.2f}x",
                report.optimal.configuration.render(stats.path),
            ]
        )
    return rows


def test_stats_sensitivity(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Whole-path NIX never beats the optimal configuration, and the
    # optimizer output stays a valid partition across the whole sweep.
    for row in rows:
        assert float(row[2].rstrip("x")) >= 1.0
    report = ascii_table(
        ["scenario", "optimal cost", "NIX/optimal", "optimal configuration"],
        rows,
        title=(
            "Statistics sensitivity on the Figure 7 setup\n"
            "(varying the vehicle fan-out and the Person population)"
        ),
    )
    write_report("stats_sensitivity", report)
