"""Analytic-vs-measured validation (our addition; the paper is analytic only).

Builds a synthetic database, derives its true statistics, and compares the
Section 3 cost formulas against page accesses counted by the operational
simulator, for queries, inserts and deletes under three configurations.
"""

from benchmarks.conftest import write_report
from repro.core.configuration import IndexConfiguration
from repro.costmodel.params import ClassStats
from repro.organizations import IndexOrganization
from repro.synth import LevelSpec, linear_path_schema, populate_path_database
from repro.validate.compare import render_validation, validate_configuration

MX = IndexOrganization.MX
MIX = IndexOrganization.MIX
NIX = IndexOrganization.NIX

CONFIGS = [
    IndexConfiguration.whole_path(3, NIX),
    IndexConfiguration.whole_path(3, MIX),
    IndexConfiguration.of((1, 1, MX), (2, 3, NIX)),
]

SPECS = {
    "A": ClassStats(objects=2000, distinct=500, fanout=2),
    "B": ClassStats(objects=300, distinct=100, fanout=1),
    "BSub1": ClassStats(objects=100, distinct=60, fanout=1),
    "BSub2": ClassStats(objects=100, distinct=60, fanout=1),
    "C": ClassStats(objects=200, distinct=80, fanout=2),
}


def build_world(seed: int):
    schema, path = linear_path_schema(
        [
            LevelSpec("A", multi_valued=True),
            LevelSpec("B", subclasses=2),
            LevelSpec("C", multi_valued=True),
        ]
    )
    return schema, path, populate_path_database(schema, path, SPECS, seed=seed)


def run_validation():
    sections = []
    all_query_ratios = []
    all_update_ratios = []
    for config in CONFIGS:
        _schema, path, database = build_world(seed=7)
        rows = validate_configuration(
            database, path, config, samples=8, seed=13, include_updates=True
        )
        sections.append(config.render(path))
        sections.append(render_validation(rows))
        sections.append("")
        for row in rows:
            if row.operation == "query":
                all_query_ratios.append(row.ratio)
            else:
                all_update_ratios.append(row.ratio)
    return sections, all_query_ratios, all_update_ratios


def test_validation(benchmark):
    sections, query_ratios, update_ratios = benchmark.pedantic(
        run_validation, rounds=1, iterations=1
    )
    # Queries: the analytic model is tight.
    assert all(0.4 <= ratio <= 2.5 for ratio in query_ratios), query_ratios
    # Updates: expectation-vs-sample and lazy-delete slack allowed.
    assert all(0.2 <= ratio <= 5.0 for ratio in update_ratios), update_ratios
    header = (
        "Analytic cost model vs measured page accesses\n"
        "(ratio = measured / analytic; 1.0 is perfect)\n"
    )
    write_report("validation", header + "\n".join(sections))
