"""Many-long-paths joint selection: the beam-backed multipath at scale.

Before the beam rewiring, ``optimize_multipath`` enumerated all
``2^(n-1)`` partitions per path — infeasible beyond length ~20 and
hopeless for a fleet of them. The k-best candidate generator caps the
per-path work at ``O(n² · r · width)``, so joint selection over eight
overlapping paths of length 30–40 (suffixes of one 37-level composition
chain, which is what makes sharing matter) completes in seconds. The
measurements — and a storage-budget sweep over the same fleet — are
recorded in ``benchmarks/results/BENCH_multipath.json`` so successive
PRs compare machine-readable numbers instead of prose.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from benchmarks.conftest import RESULTS_DIR, write_report
from benchmarks.env_meta import environment_metadata
from repro.core.cost_matrix import CostMatrix
from repro.core.multipath import PathWorkload, optimize_multipath
from repro.costmodel.params import ClassStats, PathStatistics
from repro.model.path import Path
from repro.organizations import CONFIGURABLE_ORGANIZATIONS, EXTENDED_ORGANIZATIONS
from repro.reporting.tables import ascii_table, multipath_table
from repro.synth import LevelSpec, linear_path_schema
from repro.workload.load import LoadDistribution

JSON_NAME = "BENCH_multipath.json"

#: The acceptance bound: the eight-path fleet must select in under this.
FLEET_LIMIT_SECONDS = 10.0


def chain_fleet(chain_length: int, paths: int):
    """``paths`` suffix paths of one linear chain, longest (full) first.

    Path ``i`` starts at level ``L{i}``, so every pair of paths overlaps
    on the shared tail — the regime the Section 6 extension is about.
    """
    levels = [LevelSpec(f"L{i}") for i in range(chain_length)]
    schema, full_path = linear_path_schema(levels)
    per_class = {}
    objects = 200_000
    for position in range(1, chain_length + 1):
        name = full_path.class_at(position)
        per_class[name] = ClassStats(
            objects=objects, distinct=max(10, objects // 5), fanout=1
        )
        objects = max(100, int(objects // 1.4))
    workloads = []
    for start in range(paths):
        if start == 0:
            path = full_path
        else:
            expression = ".".join(
                [f"L{start}"]
                + [f"ref{i}" for i in range(start + 1, chain_length)]
                + ["label"]
            )
            path = Path.parse(schema, expression)
        stats = PathStatistics(
            path,
            {name: per_class[name] for name in path.scope},
        )
        load = LoadDistribution.uniform(
            path, query=0.2, insert=0.05, delete=0.05
        )
        workloads.append(PathWorkload(stats=stats, load=load))
    return workloads


def measure_fleet(
    chain_length: int,
    paths: int,
    beam_width: int | None,
    organizations=None,
    budget_pages: float | None = None,
) -> dict:
    """Matrices + joint selection wall time for one fleet scenario."""
    workloads = chain_fleet(chain_length, paths)
    started = time.perf_counter()
    matrices = [
        CostMatrix.compute(
            w.stats,
            w.load,
            organizations=organizations
            if organizations is not None
            else CONFIGURABLE_ORGANIZATIONS,
        )
        for w in workloads
    ]
    matrix_seconds = time.perf_counter() - started

    started = time.perf_counter()
    result = optimize_multipath(
        workloads,
        matrices=matrices,
        beam_width=beam_width,
        budget_pages=budget_pages,
    )
    selection_seconds = time.perf_counter() - started
    return {
        "paths": paths,
        "lengths": [w.stats.length for w in workloads],
        "beam_width": beam_width,
        "budget_pages": budget_pages,
        "matrix_s": round(matrix_seconds, 3),
        "selection_s": round(selection_seconds, 3),
        "total_s": round(matrix_seconds + selection_seconds, 3),
        "total_cost": round(result.total_cost, 2),
        "independent_cost": round(result.independent_cost, 2),
        "shared_savings": round(result.shared_savings, 2),
        "storage_pages": round(result.storage_pages, 1),
        "exact": result.exact,
        "_workloads": workloads,
        "_result": result,
    }


def run_scaling():
    """The scenario ladder: exact parity point, then the long fleets."""
    scenarios = [
        # Small enough for the exact oracle (candidate enumeration and
        # joint cross product both exhaustive): the parity reference.
        measure_fleet(chain_length=6, paths=2, beam_width=None),
        # Mid-size fleet, beam regime.
        measure_fleet(chain_length=20, paths=4, beam_width=16),
        # The headline: eight overlapping paths of length 30–37.
        measure_fleet(chain_length=37, paths=8, beam_width=16),
    ]
    # Storage-budget sweep over the eight-path fleet (NONE included so
    # every budget is feasible).
    budget_reference = measure_fleet(
        chain_length=37,
        paths=8,
        beam_width=16,
        organizations=EXTENDED_ORGANIZATIONS,
        budget_pages=10**12,
    )
    budget_rows = []
    for fraction in (0.0, 0.25, 0.5, 1.0):
        budget = budget_reference["storage_pages"] * fraction
        entry = measure_fleet(
            chain_length=37,
            paths=8,
            beam_width=16,
            organizations=EXTENDED_ORGANIZATIONS,
            budget_pages=budget,
        )
        budget_rows.append(entry)
    return scenarios, budget_rows


def test_multipath_scaling(benchmark):
    scenarios, budget_rows = benchmark.pedantic(
        run_scaling, rounds=1, iterations=1
    )

    assert scenarios[0]["exact"], "the reference scenario must be exact"

    fleet = scenarios[-1]
    assert fleet["paths"] == 8
    assert min(fleet["lengths"]) == 30 and max(fleet["lengths"]) == 37
    assert fleet["total_s"] < FLEET_LIMIT_SECONDS, (
        f"eight-path joint selection took {fleet['total_s']:.1f} s "
        f"(limit {FLEET_LIMIT_SECONDS:.0f} s)"
    )
    # Overlapping suffixes must actually share physical indexes.
    assert fleet["shared_savings"] > 0.0

    # The budget sweep degrades monotonically as the budget tightens.
    budget_costs = [entry["total_cost"] for entry in budget_rows]
    assert budget_costs == sorted(budget_costs, reverse=True)
    for entry in budget_rows:
        assert entry["storage_pages"] <= entry["budget_pages"] + 1e-9

    table = ascii_table(
        ["paths", "lengths", "beam", "matrix s", "select s", "joint cost", "savings"],
        [
            [
                entry["paths"],
                f"{min(entry['lengths'])}-{max(entry['lengths'])}",
                entry["beam_width"] or "exact",
                entry["matrix_s"],
                entry["selection_s"],
                entry["total_cost"],
                entry["shared_savings"],
            ]
            for entry in scenarios
        ],
        title="Beam-backed joint selection over overlapping suffix paths",
    )
    budget_table = ascii_table(
        ["budget pages", "used pages", "joint cost"],
        [
            [
                f"{entry['budget_pages']:.0f}",
                f"{entry['storage_pages']:.0f}",
                entry["total_cost"],
            ]
            for entry in budget_rows
        ],
        title="Storage-budget sweep (8 paths, NONE organization included)",
    )
    fleet_report = multipath_table(
        [w.stats.path for w in fleet["_workloads"]], fleet["_result"]
    )
    write_report(
        "multipath_scaling",
        "\n\n".join([table, budget_table, fleet_report]),
    )

    payload = {
        "benchmark": "multipath",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "environment": environment_metadata(),
        "fleet_limit_s": FLEET_LIMIT_SECONDS,
        "measurements": [
            {k: v for k, v in entry.items() if not k.startswith("_")}
            for entry in scenarios
        ],
        "budget_sweep": [
            {k: v for k, v in entry.items() if not k.startswith("_")}
            for entry in budget_rows
        ],
    }
    json_path = pathlib.Path(RESULTS_DIR) / JSON_NAME
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
