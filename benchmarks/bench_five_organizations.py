"""Extension ablation: the full organization arsenal (MX/MIX/NIX/PX/NX).

Section 6: "The incorporation of path and nested indices [6, 2] can be
done straightforward since ... the maintenance and retrieval costs on a
subpath indexed by these types can be estimated independently of other
subpaths." This ablation adds both to the optimizer's choice set and
reports where they win on the Figure 7 statistics:

* PX (path index) — one structure, instantiation tuples: strong when
  queries hit many classes and maintenance matters;
* NX (nested index) — root oids only: unbeatable for root-class-only
  query workloads, pathological when intermediate classes are queried.
"""

from benchmarks.conftest import write_report
from repro.core.advisor import advise
from repro.core.cost_matrix import CostMatrix
from repro.organizations import (
    ALL_ORGANIZATIONS,
    CONFIGURABLE_ORGANIZATIONS,
    IndexOrganization,
)
from repro.paper import figure7_load, figure7_statistics
from repro.reporting.tables import ascii_table
from repro.workload.load import LoadDistribution, LoadTriplet

PX = IndexOrganization.PX
NX = IndexOrganization.NX


def sweep():
    stats = figure7_statistics()
    path = stats.path
    rows = []

    scenarios = {
        "paper workload (Figure 7)": figure7_load(),
        "root-class queries only": LoadDistribution(
            path, {"Person": LoadTriplet(query=0.5)}
        ),
        "root queries + updates": LoadDistribution(
            path,
            {
                "Person": LoadTriplet(query=0.5, insert=0.05, delete=0.05),
                "Company": LoadTriplet(insert=0.05, delete=0.05),
                "Division": LoadTriplet(insert=0.1, delete=0.05),
            },
        ),
    }
    results = {}
    for label, load in scenarios.items():
        base = advise(stats, load, organizations=CONFIGURABLE_ORGANIZATIONS,
                      run_baselines=False)
        extended = advise(stats, load, organizations=ALL_ORGANIZATIONS,
                          run_baselines=False)
        gain = base.optimal.cost / max(extended.optimal.cost, 1e-12)
        rows.append(
            [
                label,
                f"{base.optimal.cost:.2f}",
                f"{extended.optimal.cost:.2f}",
                f"{gain:.2f}x",
                extended.optimal.configuration.render(path),
            ]
        )
        results[label] = (base, extended)
    return rows, results, stats


def test_five_organizations(benchmark):
    rows, results, stats = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Root-only query workloads must exploit NX or PX (one narrow lookup).
    _base, extended = results["root-class queries only"]
    used = {
        assignment.organization
        for assignment in extended.optimal.configuration.assignments
    }
    assert used & {NX, PX}
    # Adding organizations can only improve the optimum.
    for label, (base, ext) in results.items():
        assert ext.optimal.cost <= base.optimal.cost + 1e-9

    matrix = CostMatrix.compute(
        stats, figure7_load(), organizations=ALL_ORGANIZATIONS
    )
    report = "\n".join(
        [
            ascii_table(
                [
                    "workload",
                    "MX/MIX/NIX optimum",
                    "with PX+NX",
                    "gain",
                    "configuration",
                ],
                rows,
                title="Optimizer with the extended organization set",
            ),
            "",
            "extended cost matrix (Figure 7 workload):",
            matrix.render(stats.path),
        ]
    )
    write_report("five_organizations", report)
